#include "bn/sampler.h"

#include <set>

#include <gtest/gtest.h>

#include "bn/builder.h"
#include "datagen/scenario.h"

namespace turbo::bn {
namespace {

using storage::EdgeStore;

// Raw (unnormalized) snapshot view over a store.
GraphView MakeView(const EdgeStore& s, int num_nodes) {
  SnapshotOptions raw;
  raw.normalize = false;
  return GraphView(BnSnapshot::Build(s, num_nodes, raw));
}

// A path 0-1-2-3-4 on type 0, plus a hub node 5 connected to 0..4 on
// type 1 with increasing weights.
GraphView MakePathAndHub() {
  EdgeStore s;
  for (UserId u = 0; u < 4; ++u) s.AddWeight(0, u, u + 1, 1.0f, 0);
  for (UserId u = 0; u < 5; ++u) {
    s.AddWeight(1, 5, u, 0.1f * static_cast<float>(u + 1), 0);
  }
  return MakeView(s, 6);
}

TEST(SamplerTest, TargetIsFirstNode) {
  auto net = MakePathAndHub();
  SubgraphSampler sampler(net, SamplerConfig{});
  auto sg = sampler.SampleOne(2);
  ASSERT_FALSE(sg.nodes.empty());
  EXPECT_EQ(sg.nodes[0], 2u);
  EXPECT_EQ(sg.num_targets, 1u);
  EXPECT_EQ(sg.local.at(2), 0);
}

TEST(SamplerTest, DuplicateTargetsCollapseToOneNode) {
  // A serving batch may name one user twice (e.g. a client retry racing
  // its original request); the sampler must fold the duplicates instead
  // of aborting, and sg.local maps every requested uid to its row.
  auto net = MakePathAndHub();
  SubgraphSampler sampler(net, SamplerConfig{});
  auto sg = sampler.Sample({2, 0, 2, 0, 2});
  EXPECT_EQ(sg.num_targets, 2u);
  ASSERT_GE(sg.nodes.size(), 2u);
  EXPECT_EQ(sg.nodes[0], 2u);
  EXPECT_EQ(sg.nodes[1], 0u);
  EXPECT_EQ(sg.local.at(2), 0);
  EXPECT_EQ(sg.local.at(0), 1);
}

TEST(SamplerTest, TwoHopsReachExactlyTwoHops) {
  auto net = MakePathAndHub();
  SamplerConfig cfg;
  cfg.num_hops = 2;
  SubgraphSampler sampler(net, cfg);
  auto sg = sampler.SampleOne(0);
  std::set<UserId> nodes(sg.nodes.begin(), sg.nodes.end());
  // From 0: hop1 {1 (path), 5 (hub)}; hop2 {2 (path), all hub neighbors}.
  EXPECT_TRUE(nodes.count(0));
  EXPECT_TRUE(nodes.count(1));
  EXPECT_TRUE(nodes.count(5));
  EXPECT_TRUE(nodes.count(2));
  EXPECT_FALSE(nodes.count(3) == 0 && nodes.count(4) == 0)
      << "hub neighbors reachable in 2 hops";
}

TEST(SamplerTest, OneHopDoesNotReachTwoHops) {
  auto net = MakePathAndHub();
  SamplerConfig cfg;
  cfg.num_hops = 1;
  SubgraphSampler sampler(net, cfg);
  auto sg = sampler.SampleOne(0);
  std::set<UserId> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_TRUE(nodes.count(1));
  EXPECT_TRUE(nodes.count(5));
  EXPECT_FALSE(nodes.count(2));  // two hops away along the path
}

TEST(SamplerTest, FanoutCapsTopByWeight) {
  auto net = MakePathAndHub();
  SamplerConfig cfg;
  cfg.num_hops = 1;
  cfg.fanout = 2;
  cfg.top_by_weight = true;
  SubgraphSampler sampler(net, cfg);
  auto sg = sampler.SampleOne(5);
  std::set<UserId> nodes(sg.nodes.begin(), sg.nodes.end());
  // Hub weights grow with id: top-2 are nodes 4 (0.5) and 3 (0.4).
  EXPECT_EQ(sg.nodes.size(), 3u);
  EXPECT_TRUE(nodes.count(4));
  EXPECT_TRUE(nodes.count(3));
}

TEST(SamplerTest, InducedEdgesIncludeIntraNeighborEdges) {
  // Triangle 0-1, 1-2, 0-2 on type 0: sampling node 0 with 1 hop must
  // also carry the 1-2 edge (induced subgraph, preserving cliques).
  EdgeStore s;
  s.AddWeight(0, 0, 1, 1.0f, 0);
  s.AddWeight(0, 1, 2, 1.0f, 0);
  s.AddWeight(0, 0, 2, 1.0f, 0);
  auto net = MakeView(s, 3);
  SamplerConfig cfg;
  cfg.num_hops = 1;
  SubgraphSampler sampler(net, cfg);
  auto sg = sampler.SampleOne(0);
  EXPECT_EQ(sg.nodes.size(), 3u);
  EXPECT_EQ(sg.NumEdges(), 3u);  // full triangle
}

TEST(SamplerTest, EdgesUseLocalIndicesBothDirections) {
  auto net = MakePathAndHub();
  SubgraphSampler sampler(net, SamplerConfig{});
  auto sg = sampler.SampleOne(1);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (const auto& e : sg.edges[t]) {
      EXPECT_LT(e.row, sg.nodes.size());
      EXPECT_LT(e.col, sg.nodes.size());
    }
    // Symmetry: (r, c) present iff (c, r) present.
    std::set<std::pair<uint32_t, uint32_t>> pairs;
    for (const auto& e : sg.edges[t]) pairs.insert({e.row, e.col});
    for (const auto& [r, c] : pairs) {
      EXPECT_TRUE(pairs.count({c, r})) << "missing reverse of " << r << ","
                                       << c;
    }
  }
}

TEST(SamplerTest, MultiTargetBatchUnion) {
  auto net = MakePathAndHub();
  SamplerConfig cfg;
  cfg.num_hops = 1;
  SubgraphSampler sampler(net, cfg);
  auto sg = sampler.Sample({0, 4});
  EXPECT_EQ(sg.num_targets, 2u);
  EXPECT_EQ(sg.nodes[0], 0u);
  EXPECT_EQ(sg.nodes[1], 4u);
  std::set<UserId> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_TRUE(nodes.count(1));  // neighbor of 0
  EXPECT_TRUE(nodes.count(3));  // neighbor of 4
}

TEST(SamplerTest, IsolatedTargetYieldsSingleton) {
  EdgeStore s;
  s.AddWeight(0, 0, 1, 1.0f, 0);
  auto net = MakeView(s, 4);
  SubgraphSampler sampler(net, SamplerConfig{});
  auto sg = sampler.SampleOne(3);
  EXPECT_EQ(sg.nodes.size(), 1u);
  EXPECT_EQ(sg.NumEdges(), 0u);
}

TEST(SamplerTest, UniformSamplingIsDeterministicPerSeed) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(400));
  EdgeStore store;
  BnBuilder builder(BnConfig{}, &store);
  builder.BuildFromLogs(ds.logs);
  auto net = MakeView(store, 400);
  SamplerConfig cfg;
  cfg.top_by_weight = false;
  cfg.fanout = 3;
  SubgraphSampler s1(net, cfg, /*seed=*/7);
  SubgraphSampler s2(net, cfg, /*seed=*/7);
  auto a = s1.SampleOne(10);
  auto b = s2.SampleOne(10);
  EXPECT_EQ(a.nodes, b.nodes);
}

TEST(SamplerTest, FraudTargetsSeeFraudRichNeighborhoods) {
  // End-to-end homophily check through builder + sampler on a synthetic
  // scenario (Observation 3 of the paper).
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1500));
  EdgeStore store;
  BnBuilder builder(BnConfig{}, &store);
  builder.BuildFromLogs(ds.logs);
  auto net = MakeView(store, static_cast<int>(ds.users.size()));
  SubgraphSampler sampler(net, SamplerConfig{});
  double fraud_ratio_at_fraud = 0.0, fraud_ratio_at_normal = 0.0;
  int nf = 0, nn = 0;
  for (const auto& u : ds.users) {
    auto sg = sampler.SampleOne(u.uid);
    if (sg.nodes.size() < 2) continue;
    int fraud_nbrs = 0;
    for (size_t i = 1; i < sg.nodes.size(); ++i) {
      fraud_nbrs += ds.users[sg.nodes[i]].is_fraud;
    }
    double ratio = static_cast<double>(fraud_nbrs) /
                   static_cast<double>(sg.nodes.size() - 1);
    if (u.is_fraud) {
      fraud_ratio_at_fraud += ratio;
      ++nf;
    } else {
      fraud_ratio_at_normal += ratio;
      ++nn;
    }
  }
  ASSERT_GT(nf, 0);
  ASSERT_GT(nn, 0);
  EXPECT_GT(fraud_ratio_at_fraud / nf,
            5.0 * std::max(1e-4, fraud_ratio_at_normal / nn));
}

}  // namespace
}  // namespace turbo::bn
