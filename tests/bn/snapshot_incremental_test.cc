// Property tests for incremental snapshot maintenance: a chain of
// ApplyDeltas() publishes over randomized add/expire schedules must be
// bit-identical to a full Build() at every step, while actually sharing
// untouched row groups with its predecessor (the structural property the
// publish-cost claim rests on).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bn/snapshot.h"
#include "storage/edge_store.h"
#include "util/rng.h"

namespace turbo::bn {
namespace {

void ExpectBitIdentical(const BnSnapshot& a, const BnSnapshot& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.normalized(), b.normalized());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.NumEdges(t), b.NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < static_cast<UserId>(a.num_nodes()); ++u) {
      NeighborSpan na = a.Neighbors(t, u);
      NeighborSpan nb = b.Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (size_t i = 0; i < na.size(); ++i) {
        ASSERT_EQ(na.id(i), nb.id(i)) << "type " << t << " uid " << u;
        // Bitwise: incremental renormalization must reproduce the full
        // build's floats exactly, not approximately.
        ASSERT_EQ(std::memcmp(&na.weights()[i], &nb.weights()[i],
                              sizeof(float)),
                  0)
            << "type " << t << " uid " << u << " slot " << i;
      }
    }
  }
}

/// One random mutation batch against `store`, recording churn exactly as
/// the server does: both endpoints of every added or expired edge.
void MutateRandomly(Rng* rng, int num_nodes, SimTime now,
                    storage::EdgeStore* store, storage::EdgeChurn* churn) {
  const int adds = static_cast<int>(rng->NextUint(40)) + 1;
  for (int i = 0; i < adds; ++i) {
    const int t = static_cast<int>(rng->NextUint(kNumEdgeTypes));
    const UserId u =
        static_cast<UserId>(rng->NextUint(static_cast<uint64_t>(num_nodes)));
    UserId v =
        static_cast<UserId>(rng->NextUint(static_cast<uint64_t>(num_nodes)));
    if (v == u) v = (v + 1) % static_cast<UserId>(num_nodes);
    const float w = static_cast<float>(rng->NextDouble(0.1, 2.0));
    store->AddWeight(t, u, v, w, now);
    churn->Touch(t, u);
    churn->Touch(t, v);
  }
  if (rng->NextBool(0.3)) {
    store->ExpireBefore(now - 3 * kDay, churn);
  }
}

struct IncrementalCase {
  int num_nodes;
  uint64_t seed;
  bool normalize;
};

class SnapshotIncrementalTest
    : public ::testing::TestWithParam<IncrementalCase> {};

TEST_P(SnapshotIncrementalTest, ChainIsBitIdenticalToFullBuild) {
  const IncrementalCase& p = GetParam();
  Rng rng(p.seed);
  storage::EdgeStore store;
  SnapshotOptions options;
  options.normalize = p.normalize;
  options.num_threads = 2;

  // Seed state + first (full) snapshot.
  storage::EdgeChurn ignored;
  MutateRandomly(&rng, p.num_nodes, 0, &store, &ignored);
  auto current = BnSnapshot::Build(store, p.num_nodes, options, 1);

  for (int epoch = 1; epoch <= 12; ++epoch) {
    const SimTime now = epoch * kDay;
    storage::EdgeChurn churn;
    MutateRandomly(&rng, p.num_nodes, now, &store, &churn);
    BnSnapshot::ApplyStats stats;
    auto next = BnSnapshot::ApplyDeltas(current, store, churn, options,
                                        1 + epoch, &stats);
    auto full = BnSnapshot::Build(store, p.num_nodes, options, 1 + epoch);
    ASSERT_NO_FATAL_FAILURE(ExpectBitIdentical(*next, *full))
        << "epoch " << epoch << " seed " << p.seed;
    EXPECT_EQ(next->version(), static_cast<uint64_t>(1 + epoch));
    EXPECT_EQ(stats.rebuilt_groups + stats.shared_groups,
              kNumEdgeTypes *
                  ((static_cast<size_t>(p.num_nodes) +
                    BnSnapshot::kRowGroupSize - 1) /
                   BnSnapshot::kRowGroupSize));
    current = next;
  }
}

TEST_P(SnapshotIncrementalTest, SmallChurnSharesMostRowGroups) {
  const IncrementalCase& p = GetParam();
  if (p.num_nodes <= static_cast<int>(BnSnapshot::kRowGroupSize)) {
    GTEST_SKIP() << "single-group graph cannot share partially";
  }
  Rng rng(p.seed);
  storage::EdgeStore store;
  SnapshotOptions options;
  options.normalize = p.normalize;
  options.num_threads = 1;
  storage::EdgeChurn ignored;
  for (int i = 0; i < 8; ++i) {
    MutateRandomly(&rng, p.num_nodes, i * kHour, &store, &ignored);
  }
  auto prev = BnSnapshot::Build(store, p.num_nodes, options, 1);

  // Touch two nodes inside the *first* row group only.
  storage::EdgeChurn churn;
  store.AddWeight(0, 3, 5, 1.0f, 10 * kHour);
  churn.Touch(0, 3);
  churn.Touch(0, 5);
  BnSnapshot::ApplyStats stats;
  auto next =
      BnSnapshot::ApplyDeltas(prev, store, churn, options, 2, &stats);

  const size_t groups_per_type =
      (static_cast<size_t>(p.num_nodes) + BnSnapshot::kRowGroupSize - 1) /
      BnSnapshot::kRowGroupSize;
  const size_t total_groups = kNumEdgeTypes * groups_per_type;
  // Untouched types share everything; the touched type rebuilds at most
  // the groups its recompute set (two nodes + their neighbors) spans.
  EXPECT_EQ(next->SharedGroupsWith(*prev), stats.shared_groups);
  EXPECT_GE(stats.shared_groups, total_groups - groups_per_type);
  EXPECT_LT(stats.rebuilt_groups, groups_per_type);
  ExpectBitIdentical(*next, *BnSnapshot::Build(store, p.num_nodes, options, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotIncrementalTest,
    ::testing::Values(IncrementalCase{50, 1, true},
                      IncrementalCase{50, 2, false},
                      IncrementalCase{300, 3, true},
                      IncrementalCase{1500, 4, true},
                      IncrementalCase{1500, 5, false},
                      IncrementalCase{2600, 6, true}));

TEST(SnapshotIncrementalTest, EmptyChurnSharesEverything) {
  storage::EdgeStore store;
  store.AddWeight(0, 0, 1, 1.0f, 0);
  SnapshotOptions options;
  options.num_threads = 1;
  auto prev = BnSnapshot::Build(store, 5, options, 1);
  storage::EdgeChurn none;
  BnSnapshot::ApplyStats stats;
  auto next = BnSnapshot::ApplyDeltas(prev, store, none, options, 2, &stats);
  EXPECT_EQ(stats.touched_rows, 0u);
  EXPECT_EQ(stats.rebuilt_groups, 0u);
  EXPECT_EQ(next->SharedGroupsWith(*prev),
            static_cast<size_t>(kNumEdgeTypes));
  EXPECT_EQ(next->version(), 2u);
  ExpectBitIdentical(*next, *prev);
}

}  // namespace
}  // namespace turbo::bn
