// Property-based sweeps over BN construction: invariants that must hold
// for any window hierarchy, any population size, and any seed.
#include <gtest/gtest.h>

#include "bn/builder.h"
#include "bn/snapshot.h"
#include "datagen/scenario.h"

namespace turbo::bn {
namespace {

struct BnPropertyCase {
  int users;
  uint64_t seed;
  std::vector<SimTime> windows;
};

class BnPropertyTest : public ::testing::TestWithParam<BnPropertyCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    auto cfg = datagen::ScenarioConfig::D1Like(p.users);
    cfg.seed = p.seed;
    ds_ = datagen::GenerateScenario(cfg);
    BnConfig bn_cfg;
    bn_cfg.windows = p.windows;
    BnBuilder builder(bn_cfg, &edges_);
    builder.BuildFromLogs(ds_.logs);
  }

  datagen::Dataset ds_;
  storage::EdgeStore edges_;
};

TEST_P(BnPropertyTest, WeightsArePositiveAndBounded) {
  // Any single (window, epoch, value) contributes at most 1/2 (a pair);
  // total weight is bounded by windows * co-occurrence epochs. A loose
  // but universal bound: weight <= windows * logs-per-user.
  const double bound = GetParam().windows.size() * 500.0;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < ds_.users.size(); ++u) {
      for (const auto& [v, e] : edges_.Neighbors(t, u)) {
        ASSERT_GT(e.weight, 0.0f);
        ASSERT_LT(e.weight, bound);
      }
    }
  }
}

TEST_P(BnPropertyTest, AdjacencyIsSymmetric) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < ds_.users.size(); ++u) {
      for (const auto& [v, e] : edges_.Neighbors(t, u)) {
        ASSERT_FLOAT_EQ(edges_.Weight(t, v, u), e.weight)
            << "asymmetric edge " << u << "-" << v << " type " << t;
      }
    }
  }
}

TEST_P(BnPropertyTest, NoSelfLoops) {
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < ds_.users.size(); ++u) {
      ASSERT_FLOAT_EQ(edges_.Weight(t, u, u), 0.0f);
    }
  }
}

TEST_P(BnPropertyTest, NormalizationPreservesStructure) {
  SnapshotOptions raw_opts;
  raw_opts.normalize = false;
  auto net = BnSnapshot::Build(edges_, static_cast<int>(ds_.users.size()),
                               raw_opts);
  auto norm = BnSnapshot::Build(edges_, static_cast<int>(ds_.users.size()));
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(net->NumEdges(t), norm->NumEdges(t));
    for (UserId u = 0; u < 64 && u < ds_.users.size(); ++u) {
      const auto raw = net->Neighbors(t, u);
      const auto nrm = norm->Neighbors(t, u);
      ASSERT_EQ(raw.size(), nrm.size());
      for (size_t i = 0; i < raw.size(); ++i) {
        ASSERT_EQ(raw[i].id, nrm[i].id);
        ASSERT_GT(nrm[i].weight, 0.0f);
        // w / sqrt(d_u d_v) <= w / w = 1 when both degrees >= w.
        ASSERT_LE(nrm[i].weight, 1.0f + 1e-5f);
      }
    }
  }
}

TEST_P(BnPropertyTest, MoreWindowsNeverRemoveEdges) {
  // Rebuilding with a superset of windows can only add weight.
  BnConfig wider;
  wider.windows = GetParam().windows;
  wider.windows.push_back(2 * kDay);
  storage::EdgeStore more;
  BnBuilder(wider, &more).BuildFromLogs(ds_.logs);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < ds_.users.size(); ++u) {
      for (const auto& [v, e] : edges_.Neighbors(t, u)) {
        ASSERT_GE(more.Weight(t, u, v), e.weight - 1e-5f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BnPropertyTest,
    ::testing::Values(
        BnPropertyCase{300, 1, {kHour}},
        BnPropertyCase{300, 2, {kHour, kDay}},
        BnPropertyCase{600, 3, {kHour, 6 * kHour, kDay}},
        BnPropertyCase{600, 4, BnConfig::DefaultWindows()},
        BnPropertyCase{1000, 5, {30 * kMinute, 2 * kHour}}));

}  // namespace
}  // namespace turbo::bn
