#include "bn/snapshot.h"

#include <cmath>

#include <gtest/gtest.h>

namespace turbo::bn {
namespace {

using storage::EdgeStore;

// Two-type example:
//   type 0: 0-1 (w 2), 1-2 (w 2)
//   type 1: 0-1 (w 1), 0-2 (w 3)
EdgeStore MakeStore() {
  EdgeStore s;
  s.AddWeight(0, 0, 1, 2.0f, 0);
  s.AddWeight(0, 1, 2, 2.0f, 0);
  s.AddWeight(1, 0, 1, 1.0f, 0);
  s.AddWeight(1, 0, 2, 3.0f, 0);
  return s;
}

SnapshotOptions Raw() {
  SnapshotOptions o;
  o.normalize = false;
  return o;
}

TEST(SnapshotTest, SnapshotPreservesEdges) {
  auto snap = BnSnapshot::Build(MakeStore(), 3, Raw());
  EXPECT_EQ(snap->num_nodes(), 3);
  EXPECT_EQ(snap->NumEdges(0), 2u);
  EXPECT_EQ(snap->NumEdges(1), 2u);
  EXPECT_EQ(snap->TotalEdges(), 4u);
  ASSERT_EQ(snap->Neighbors(0, 1).size(), 2u);
  EXPECT_DOUBLE_EQ(snap->WeightedDegree(0, 1), 4.0);
}

TEST(SnapshotTest, NeighborsSortedById) {
  auto snap = BnSnapshot::Build(MakeStore(), 3, Raw());
  const auto nbrs = snap->Neighbors(0, 1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_LT(nbrs.id(0), nbrs.id(1));
}

TEST(SnapshotTest, SymmetricNormalizationFusedIntoBuild) {
  auto snap = BnSnapshot::Build(MakeStore(), 3);
  EXPECT_TRUE(snap->normalized());
  // Type 0: deg(0)=2, deg(1)=4, deg(2)=2.
  // w'(0,1) = 2 / sqrt(2*4)
  const auto nbrs = snap->Neighbors(0, 0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_NEAR(nbrs.weight(0), 2.0f / std::sqrt(8.0f), 1e-6f);
  // Symmetric: same value seen from node 1.
  for (const auto& e : snap->Neighbors(0, 1)) {
    if (e.id == 0) EXPECT_NEAR(e.weight, 2.0f / std::sqrt(8.0f), 1e-6f);
  }
}

TEST(SnapshotTest, NormalizationIsPerType) {
  auto snap = BnSnapshot::Build(MakeStore(), 3);
  // Type 1: deg(0)=4, deg(1)=1, deg(2)=3. w'(0,1) = 1/sqrt(4).
  for (const auto& e : snap->Neighbors(1, 0)) {
    if (e.id == 1) EXPECT_NEAR(e.weight, 0.5f, 1e-6f);
    if (e.id == 2) EXPECT_NEAR(e.weight, 3.0f / std::sqrt(12.0f), 1e-6f);
  }
}

TEST(SnapshotTest, ParallelBuildMatchesSerialBuild) {
  SnapshotOptions serial;
  serial.num_threads = 1;
  SnapshotOptions parallel;
  parallel.num_threads = 4;
  auto a = BnSnapshot::Build(MakeStore(), 3, serial);
  auto b = BnSnapshot::Build(MakeStore(), 3, parallel);
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a->NumEdges(t), b->NumEdges(t));
    for (UserId u = 0; u < 3; ++u) {
      const auto na = a->Neighbors(t, u);
      const auto nb = b->Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size());
      for (size_t i = 0; i < na.size(); ++i) {
        EXPECT_EQ(na.id(i), nb.id(i));
        EXPECT_FLOAT_EQ(na.weight(i), nb.weight(i));
      }
    }
  }
}

TEST(SnapshotTest, VersionIsCarried) {
  auto snap = BnSnapshot::Build(MakeStore(), 3, Raw(), /*version=*/42);
  EXPECT_EQ(snap->version(), 42u);
  GraphView view(snap);
  EXPECT_EQ(view.version(), 42u);
}

TEST(GraphViewTest, UnionNeighborsMergeAcrossTypes) {
  GraphView net(BnSnapshot::Build(MakeStore(), 3, Raw()));
  auto u0 = net.UnionNeighbors(0);
  ASSERT_EQ(u0.size(), 2u);  // {1, 2}
  EXPECT_EQ(u0[0].id, 1u);
  EXPECT_FLOAT_EQ(u0[0].weight, 3.0f);  // 2 (type 0) + 1 (type 1)
  EXPECT_EQ(u0[1].id, 2u);
  EXPECT_FLOAT_EQ(u0[1].weight, 3.0f);
  EXPECT_EQ(net.UnionDegree(0), 2u);
  EXPECT_DOUBLE_EQ(net.UnionWeightedDegree(0), 6.0);
}

TEST(GraphViewTest, MaskingIsZeroCopyOverSharedSnapshot) {
  GraphView net(BnSnapshot::Build(MakeStore(), 3, Raw()));
  GraphView masked = net.WithTypeMasked(0);
  EXPECT_EQ(masked.NumEdges(0), 0u);
  EXPECT_EQ(masked.NumEdges(1), 2u);
  EXPECT_TRUE(masked.Neighbors(0, 1).empty());
  EXPECT_FALSE(masked.type_enabled(0));
  EXPECT_TRUE(masked.type_enabled(1));
  // Union view respects the mask.
  auto u0 = masked.UnionNeighbors(0);
  ASSERT_EQ(u0.size(), 2u);
  EXPECT_FLOAT_EQ(u0[0].weight, 1.0f);  // only type 1 remains
  // Original untouched and both views share one snapshot (no copy).
  EXPECT_EQ(net.NumEdges(0), 2u);
  EXPECT_EQ(masked.snapshot().get(), net.snapshot().get());
}

TEST(GraphViewTest, ViewKeepsSnapshotAlive) {
  GraphView view;
  {
    auto snap = BnSnapshot::Build(MakeStore(), 3, Raw());
    view = GraphView(snap);
  }
  // The temporary shared_ptr is gone; the view still serves reads.
  EXPECT_EQ(view.TotalEdges(), 4u);
  ASSERT_EQ(view.Neighbors(0, 1).size(), 2u);
}

TEST(SnapshotTest, IsolatedNodesHaveNoNeighbors) {
  GraphView net(BnSnapshot::Build(MakeStore(), 5, Raw()));
  EXPECT_TRUE(net.Neighbors(0, 4).empty());
  EXPECT_EQ(net.UnionDegree(4), 0u);
  // Normalization must not divide by zero on isolated nodes.
  GraphView norm(BnSnapshot::Build(MakeStore(), 5));
  EXPECT_TRUE(norm.Neighbors(0, 4).empty());
}

TEST(SnapshotDeathTest, BoundsChecked) {
  auto snap = BnSnapshot::Build(MakeStore(), 3, Raw());
  GraphView net(snap);
  EXPECT_DEATH(net.Neighbors(0, 3), "CHECK failed");
  EXPECT_DEATH(net.Neighbors(-1, 0), "CHECK failed");
  EXPECT_DEATH(net.WithTypeMasked(99), "CHECK failed");
  EXPECT_DEATH(GraphView().Neighbors(0, 0), "CHECK failed");
}

}  // namespace
}  // namespace turbo::bn
