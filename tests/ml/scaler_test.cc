#include "ml/scaler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace turbo::ml {
namespace {

TEST(ScalerTest, TransformedDataHasZeroMeanUnitVar) {
  Rng rng(1);
  la::Matrix x(500, 3);
  for (size_t r = 0; r < x.rows(); ++r) {
    x(r, 0) = static_cast<float>(rng.NextGaussian(100, 20));
    x(r, 1) = static_cast<float>(rng.NextGaussian(-5, 0.1));
    x(r, 2) = static_cast<float>(rng.NextDouble() * 1e6);
  }
  StandardScaler scaler;
  la::Matrix t = scaler.FitTransform(x);
  for (size_t c = 0; c < 3; ++c) {
    double mean = 0, sq = 0;
    for (size_t r = 0; r < t.rows(); ++r) {
      mean += t(r, c);
      sq += static_cast<double>(t(r, c)) * t(r, c);
    }
    mean /= t.rows();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / t.rows() - mean * mean, 1.0, 1e-3);
  }
}

TEST(ScalerTest, ConstantFeatureDoesNotBlowUp) {
  la::Matrix x(10, 1, 5.0f);
  StandardScaler scaler;
  la::Matrix t = scaler.FitTransform(x);
  for (size_t r = 0; r < t.rows(); ++r) {
    EXPECT_FLOAT_EQ(t(r, 0), 0.0f);
    EXPECT_FALSE(std::isnan(t(r, 0)));
  }
}

TEST(ScalerTest, FitOnSubsetAppliesEverywhere) {
  la::Matrix x = la::Matrix::FromRows({{0}, {10}, {1000}, {2000}});
  StandardScaler scaler;
  scaler.Fit(x, {0, 1});  // mean 5, std 5
  la::Matrix t = scaler.Transform(x);
  EXPECT_NEAR(t(0, 0), -1.0f, 1e-5f);
  EXPECT_NEAR(t(1, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(t(2, 0), 199.0f, 1e-3f);
}

TEST(ScalerDeathTest, TransformBeforeFitAborts) {
  StandardScaler scaler;
  la::Matrix x(2, 2);
  EXPECT_DEATH(scaler.Transform(x), "CHECK failed");
}

TEST(ScalerDeathTest, DimensionMismatchAborts) {
  StandardScaler scaler;
  scaler.Fit(la::Matrix(3, 2, 1.0f));
  EXPECT_DEATH(scaler.Transform(la::Matrix(3, 5)), "CHECK failed");
}

}  // namespace
}  // namespace turbo::ml
