#include "ml/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "util/rng.h"

namespace turbo::ml {
namespace {

struct Data {
  la::Matrix x;
  std::vector<int> y;
};

// Concentric circles: inner circle positive. Not linearly separable.
Data MakeCircles(int n, uint64_t seed) {
  Rng rng(seed);
  Data d{la::Matrix(n, 2), std::vector<int>(n)};
  for (int i = 0; i < n; ++i) {
    const bool pos = rng.NextBool(0.5);
    const double radius = pos ? 1.0 : 3.0;
    const double angle = rng.NextDouble() * 2 * M_PI;
    const double r = radius + rng.NextGaussian() * 0.3;
    d.x(i, 0) = static_cast<float>(r * std::cos(angle));
    d.x(i, 1) = static_cast<float>(r * std::sin(angle));
    d.y[i] = pos;
  }
  return d;
}

TEST(MlpTest, LearnsNonlinearBoundary) {
  auto train = MakeCircles(1500, 1);
  auto test = MakeCircles(400, 2);
  MlpConfig cfg;
  cfg.hidden = {32, 16};
  cfg.epochs = 300;
  cfg.lr = 5e-3f;
  Mlp model(cfg);
  model.Fit(train.x, train.y);
  EXPECT_GT(metrics::RocAuc(model.PredictProba(test.x), test.y), 0.95);
}

TEST(MlpTest, OutputsValidProbabilities) {
  auto train = MakeCircles(300, 3);
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 50;
  Mlp model(cfg);
  model.Fit(train.x, train.y);
  for (double p : model.PredictProba(train.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlpTest, DeterministicForSameSeed) {
  auto train = MakeCircles(300, 4);
  MlpConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 30;
  Mlp a(cfg), b(cfg);
  a.Fit(train.x, train.y);
  b.Fit(train.x, train.y);
  auto pa = a.PredictProba(train.x);
  auto pb = b.PredictProba(train.x);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(MlpDeathTest, PredictBeforeFitAborts) {
  Mlp model;
  EXPECT_DEATH(model.PredictProba(la::Matrix(2, 2)), "CHECK failed");
}

}  // namespace
}  // namespace turbo::ml
