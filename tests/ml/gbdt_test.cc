#include "ml/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "util/rng.h"

namespace turbo::ml {
namespace {

struct Data {
  la::Matrix x;
  std::vector<int> y;
};

// XOR-style dataset: label = (x0 > 0) != (x1 > 0). Linear models fail;
// trees must nail it.
Data MakeXor(int n, uint64_t seed) {
  Rng rng(seed);
  Data d{la::Matrix(n, 3), std::vector<int>(n)};
  for (int i = 0; i < n; ++i) {
    const double a = rng.NextGaussian();
    const double b = rng.NextGaussian();
    d.x(i, 0) = static_cast<float>(a);
    d.x(i, 1) = static_cast<float>(b);
    d.x(i, 2) = static_cast<float>(rng.NextGaussian());  // noise
    d.y[i] = ((a > 0) != (b > 0)) ? 1 : 0;
  }
  return d;
}

TEST(GbdtTest, LearnsXor) {
  auto train = MakeXor(3000, 1);
  auto test = MakeXor(800, 2);
  Gbdt model;
  model.Fit(train.x, train.y);
  auto scores = model.PredictProba(test.x);
  EXPECT_GT(metrics::RocAuc(scores, test.y), 0.97);
}

TEST(GbdtTest, NoiseFeatureHasLowImportance) {
  auto train = MakeXor(3000, 3);
  Gbdt model;
  model.Fit(train.x, train.y);
  auto imp = model.FeatureImportance();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], 5.0 * imp[2]);
  EXPECT_GT(imp[1], 5.0 * imp[2]);
}

TEST(GbdtTest, MoreTreesImproveTrainFit) {
  auto train = MakeXor(1500, 4);
  GbdtConfig few;
  few.num_trees = 5;
  GbdtConfig many;
  many.num_trees = 100;
  Gbdt a(few), b(many);
  a.Fit(train.x, train.y);
  b.Fit(train.x, train.y);
  auto auc_a = metrics::RocAuc(a.PredictProba(train.x), train.y);
  auto auc_b = metrics::RocAuc(b.PredictProba(train.x), train.y);
  EXPECT_GT(auc_b, auc_a);
}

TEST(GbdtTest, PredictionsAreProbabilities) {
  auto train = MakeXor(500, 5);
  Gbdt model;
  model.Fit(train.x, train.y);
  for (double p : model.PredictProba(train.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_FALSE(std::isnan(p));
  }
}

TEST(GbdtTest, HandlesConstantFeatures) {
  Rng rng(6);
  la::Matrix x(400, 2);
  std::vector<int> y(400);
  for (int i = 0; i < 400; ++i) {
    x(i, 0) = 7.0f;  // constant
    x(i, 1) = static_cast<float>(rng.NextGaussian());
    y[i] = x(i, 1) > 0;
  }
  Gbdt model;
  model.Fit(x, y);
  EXPECT_GT(metrics::RocAuc(model.PredictProba(x), y), 0.95);
}

TEST(GbdtTest, HandlesAllOneClass) {
  la::Matrix x(50, 2, 1.0f);
  std::vector<int> y(50, 0);
  Gbdt model;
  model.Fit(x, y);
  auto p = model.PredictProba(x);
  for (double v : p) EXPECT_LT(v, 0.1);
}

TEST(GbdtTest, ImbalanceWithAutoWeightKeepsRecall) {
  Rng rng(7);
  const int n = 4000;
  la::Matrix x(n, 2);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const bool pos = rng.NextBool(0.02);
    y[i] = pos;
    x(i, 0) = static_cast<float>(rng.NextGaussian(pos ? 2.0 : 0.0, 1.0));
    x(i, 1) = static_cast<float>(rng.NextGaussian());
  }
  Gbdt model;
  model.Fit(x, y);
  auto report = metrics::Evaluate(model.PredictProba(x), y);
  EXPECT_GT(report.recall_pct, 60.0);
}

TEST(GbdtTest, DeterministicForSameSeed) {
  auto train = MakeXor(800, 8);
  Gbdt a, b;
  a.Fit(train.x, train.y);
  b.Fit(train.x, train.y);
  auto pa = a.PredictProba(train.x);
  auto pb = b.PredictProba(train.x);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(GbdtTest, DepthLimitIsRespectedViaTreeCount) {
  auto train = MakeXor(500, 9);
  GbdtConfig cfg;
  cfg.num_trees = 17;
  Gbdt model(cfg);
  model.Fit(train.x, train.y);
  EXPECT_LE(model.num_trees(), 17);
  EXPECT_GE(model.num_trees(), 15);  // row subsample may skip a tree
}

}  // namespace
}  // namespace turbo::ml
