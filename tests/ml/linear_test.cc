#include "ml/linear.h"

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "util/rng.h"

namespace turbo::ml {
namespace {

// Two Gaussian blobs along the first feature; second feature is noise.
struct Blobs {
  la::Matrix x;
  std::vector<int> y;
};

Blobs MakeBlobs(int n, double sep, double pos_rate, uint64_t seed) {
  Rng rng(seed);
  Blobs b{la::Matrix(n, 2), std::vector<int>(n)};
  for (int i = 0; i < n; ++i) {
    const bool pos = rng.NextBool(pos_rate);
    b.y[i] = pos;
    b.x(i, 0) = static_cast<float>(rng.NextGaussian(pos ? sep : 0.0, 1.0));
    b.x(i, 1) = static_cast<float>(rng.NextGaussian());
  }
  return b;
}

TEST(BalancedWeightTest, ComputesNegOverPos) {
  EXPECT_DOUBLE_EQ(BalancedPositiveWeight({1, 0, 0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(BalancedPositiveWeight({1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(BalancedPositiveWeight({0, 0, 0, 0}), 1.0);  // no pos
  // Clamped at max.
  std::vector<int> y(1000, 0);
  y[0] = 1;
  EXPECT_DOUBLE_EQ(BalancedPositiveWeight(y, 50.0), 50.0);
}

TEST(LogisticRegressionTest, SeparatesBlobs) {
  auto train = MakeBlobs(2000, 3.0, 0.5, 1);
  auto test = MakeBlobs(500, 3.0, 0.5, 2);
  LogisticRegression lr;
  lr.Fit(train.x, train.y);
  auto scores = lr.PredictProba(test.x);
  EXPECT_GT(metrics::RocAuc(scores, test.y), 0.95);
}

TEST(LogisticRegressionTest, LearnsPositiveWeightOnSignalFeature) {
  auto train = MakeBlobs(2000, 3.0, 0.5, 3);
  LogisticRegression lr;
  lr.Fit(train.x, train.y);
  EXPECT_GT(lr.weights()[0], 0.5f);
  EXPECT_LT(std::abs(lr.weights()[1]), std::abs(lr.weights()[0]) / 3);
}

TEST(LogisticRegressionTest, ProbabilitiesInRange) {
  auto train = MakeBlobs(500, 2.0, 0.3, 4);
  LogisticRegression lr;
  lr.Fit(train.x, train.y);
  for (double p : lr.PredictProba(train.x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, ImbalancedDataStillRecallsPositives) {
  auto train = MakeBlobs(4000, 2.5, 0.03, 5);
  LogisticRegression lr;  // auto class weight
  lr.Fit(train.x, train.y);
  auto scores = lr.PredictProba(train.x);
  auto report = metrics::Evaluate(scores, train.y);
  EXPECT_GT(report.recall_pct, 50.0);
}

TEST(LinearSvmTest, SeparatesBlobs) {
  auto train = MakeBlobs(2000, 3.0, 0.5, 6);
  auto test = MakeBlobs(500, 3.0, 0.5, 7);
  LinearSvm svm;
  svm.Fit(train.x, train.y);
  auto scores = svm.PredictProba(test.x);
  EXPECT_GT(metrics::RocAuc(scores, test.y), 0.95);
}

TEST(LinearSvmTest, MarginSignMatchesClass) {
  auto train = MakeBlobs(2000, 4.0, 0.5, 8);
  LinearSvm svm;
  svm.Fit(train.x, train.y);
  int correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    const bool pred = svm.Margin(train.x, i) > 0;
    correct += (pred == (train.y[i] != 0));
  }
  EXPECT_GT(correct, 180);
}

TEST(LinearSvmTest, ProbaMonotoneInMargin) {
  auto train = MakeBlobs(500, 3.0, 0.5, 9);
  LinearSvm svm;
  svm.Fit(train.x, train.y);
  auto scores = svm.PredictProba(train.x);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 50; ++j) {
      if (svm.Margin(train.x, i) > svm.Margin(train.x, j)) {
        EXPECT_GE(scores[i], scores[j]);
      }
    }
  }
}

TEST(LinearDeathTest, MismatchedShapesAbort) {
  LogisticRegression lr;
  EXPECT_DEATH(lr.Fit(la::Matrix(3, 2), std::vector<int>{1, 0}),
               "CHECK failed");
}

}  // namespace
}  // namespace turbo::ml
