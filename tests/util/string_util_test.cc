#include "util/string_util.h"

#include <gtest/gtest.h>

namespace turbo {
namespace {

TEST(SplitTest, BasicSplit) {
  auto p = Split("a,b,c", ',');
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto p = Split("a,,c,", ',');
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[1], "");
  EXPECT_EQ(p[3], "");
}

TEST(SplitTest, EmptyStringYieldsOneField) {
  auto p = Split("", ',');
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(WithThousandsTest, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace turbo
