#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace turbo {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUintInRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextUint(n), n);
  }
}

TEST(RngTest, NextUintCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUniformMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sq / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.005);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, PoissonMeanSmallLambda) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeLambda) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(29);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextZipf(1000, 1.2);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++low;
    if (v >= 500) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextZipf(100, 0.0));
  }
  EXPECT_NEAR(sum / n, 49.5, 1.5);
}

TEST(RngTest, WeightedSamplingProportions) {
  Rng rng(37);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementSmallKUnbiased) {
  Rng rng(43);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) {
    for (size_t v : rng.SampleWithoutReplacement(20, 3)) ++counts[v];
  }
  // Each index expected 3000 times.
  for (int c : counts) EXPECT_NEAR(c, 3000, 300);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(47);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SplitStreamsIndependent) {
  Rng a(55);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(MixSeedsTest, Mix64IsBijectiveOnSamples) {
  // The finalizer is a bijection; distinct inputs must map to distinct
  // outputs (spot-checked over a contiguous and a strided range).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 4096; ++i) seen.insert(Mix64(i));
  for (uint64_t i = 1; i <= 4096; ++i) seen.insert(Mix64(i << 40));
  EXPECT_EQ(seen.size(), 2 * 4096u);
}

// Regression for the sampler-seed collision bug: the previous scheme
// `(version << 20) ^ (seq + 1)` reuses seeds as soon as the request
// counter crosses 2^20 — two different (version, seq) requests then
// draw identical subgraphs. MixSeeds must keep a realistic grid of
// versions x sequence numbers collision-free.
TEST(MixSeedsTest, NoCollisionsOverVersionSequenceGrid) {
  constexpr uint64_t kVersions = 64;
  constexpr uint64_t kSeqs = 8192;
  std::vector<uint64_t> seeds;
  seeds.reserve(kVersions * kSeqs);
  for (uint64_t v = 0; v < kVersions; ++v) {
    for (uint64_t s = 0; s < kSeqs; ++s) seeds.push_back(MixSeeds(v, s));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "MixSeeds collided on the (version, seq) grid";
}

TEST(MixSeedsTest, FixesShiftXorCollision) {
  // Concrete collision of the old scheme: versions 1 and 2 with these
  // sequence numbers land on the same shifted-xor seed...
  const uint64_t v1 = 1, s1 = (2ULL << 20) - 1;
  const uint64_t v2 = 2, s2 = (1ULL << 20) - 1;
  ASSERT_EQ((v1 << 20) ^ (s1 + 1), (v2 << 20) ^ (s2 + 1));
  // ...while the mixed seeds differ.
  EXPECT_NE(MixSeeds(v1, s1), MixSeeds(v2, s2));
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(59);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

}  // namespace
}  // namespace turbo
