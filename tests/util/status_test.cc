#include "util/status.h"

#include <gtest/gtest.h>

namespace turbo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("user 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "user 42");
  EXPECT_EQ(s.ToString(), "NotFound: user 42");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.take();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.value(), "Result::value on error");
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(TURBO_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto f = []() -> Status {
    TURBO_RETURN_IF_ERROR(Status::NotFound("x"));
    return Status::OK();
  };
  EXPECT_EQ(f().code(), StatusCode::kNotFound);
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto f = []() -> Status {
    TURBO_RETURN_IF_ERROR(Status::OK());
    return Status::AlreadyExists("end");
  };
  EXPECT_EQ(f().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace turbo
