#include "util/time_util.h"

#include <gtest/gtest.h>

namespace turbo {
namespace {

TEST(TimeUtilTest, Constants) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kDay, 86400);
}

TEST(TimeUtilTest, FormatZero) { EXPECT_EQ(FormatSimTime(0), "0d 00:00:00"); }

TEST(TimeUtilTest, FormatMixed) {
  EXPECT_EQ(FormatSimTime(2 * kDay + 3 * kHour + 4 * kMinute + 5),
            "2d 03:04:05");
}

TEST(TimeUtilTest, FormatNegative) {
  EXPECT_EQ(FormatSimTime(-kHour), "-0d 01:00:00");
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), sw.ElapsedMillis());
}

}  // namespace
}  // namespace turbo
