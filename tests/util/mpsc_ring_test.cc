// MpscRing: bounded-ness (full ring rejects, nothing blocks), FIFO per
// producer, and a concurrent producers/consumer drill that the TSan
// workflow runs to validate the lock-free protocol.
#include "util/mpsc_ring.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace turbo::util {
namespace {

TEST(MpscRingTest, CapacityIsExactlyAsConfigured) {
  // The slot array rounds up to a power of two internally, but the
  // admission bound is the configured number — a ring built for 65
  // events must not quietly admit 128.
  EXPECT_EQ(MpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 3u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(65).capacity(), 65u);
}

TEST(MpscRingTest, NonPowerOfTwoCapacityAdmitsExactlyThatMany) {
  for (const size_t cap : {1u, 3u, 5u, 65u, 100u}) {
    MpscRing<int> ring(cap);
    for (size_t i = 0; i < cap; ++i) {
      ASSERT_TRUE(ring.TryPush(static_cast<int>(i)))
          << "cap " << cap << " push " << i;
    }
    EXPECT_FALSE(ring.TryPush(-1)) << "cap " << cap;
    EXPECT_EQ(ring.size_approx(), cap);
    // Drain in FIFO order; depth tracks exactly.
    for (size_t i = 0; i < cap; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_EQ(out, static_cast<int>(i));
    }
    EXPECT_EQ(ring.size_approx(), 0u);
    // Freed slots readmit up to the same exact bound again.
    for (size_t i = 0; i < cap; ++i) {
      ASSERT_TRUE(ring.TryPush(static_cast<int>(i)));
    }
    EXPECT_FALSE(ring.TryPush(-1));
  }
}

TEST(MpscRingTest, FullRingRejectsUntilPopped) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPush(i)) << i;
  }
  // Backpressure: the fifth push fails without blocking or overwriting.
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.size_approx(), 4u);

  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0);
  // One freed slot readmits exactly one value.
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_FALSE(ring.TryPush(5));
}

TEST(MpscRingTest, PopOnEmptyFails) {
  MpscRing<int> ring(8);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  ASSERT_TRUE(ring.TryPush(7));
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, SingleProducerIsFifoAcrossWraparound) {
  MpscRing<int> ring(4);
  int next_out = 0;
  // Push/pop far more values than the capacity so every slot's sequence
  // number wraps several times.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    if (i % 2 == 1) {  // drain two after every second push
      for (int k = 0; k < 2; ++k) {
        int out = -1;
        ASSERT_TRUE(ring.TryPop(&out));
        EXPECT_EQ(out, next_out++);
      }
    }
  }
  EXPECT_EQ(next_out, 64);
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, ConcurrentProducersSingleConsumer) {
  // Values encode (producer, sequence) so the consumer can check both
  // completeness and per-producer FIFO order. Producers spin on a full
  // ring: the ring is deliberately smaller than the total item count so
  // the full/retry path is exercised, not just the happy path.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscRing<uint64_t> ring(64);

  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &start, p] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value =
            (static_cast<uint64_t>(p) << 32) | static_cast<uint32_t>(i);
        while (!ring.TryPush(value)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::map<int, int> next_seq;  // producer -> expected next sequence
  size_t received = 0;
  start.store(true, std::memory_order_release);
  while (received < static_cast<size_t>(kProducers) * kPerProducer) {
    uint64_t value = 0;
    if (!ring.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(value >> 32);
    const int seq = static_cast<int>(value & 0xffffffffu);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " out of order";
    next_seq[p] = seq + 1;
    ++received;
  }
  for (auto& t : producers) {
    t.join();
  }
  // Everything arrived exactly once and the ring is drained.
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
  uint64_t leftover = 0;
  EXPECT_FALSE(ring.TryPop(&leftover));
  EXPECT_EQ(ring.size_approx(), 0u);
}

}  // namespace
}  // namespace turbo::util
