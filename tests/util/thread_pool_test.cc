#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace turbo::util {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<int> pending{100};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      ran.fetch_add(1);
      if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return pending.load() == 0; });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(8, 16, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 8u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in chunk execution, so an inner ParallelFor
  // issued from a worker completes even when every worker is busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(16, 2, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int it = 0; it < 20; ++it) {
        pool.ParallelFor(100, 7, [&](size_t b, size_t e) {
          total.fetch_add(static_cast<int>(e - b));
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4 * 20 * 100);
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().size(), 1);
}

}  // namespace
}  // namespace turbo::util
