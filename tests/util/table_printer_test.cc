#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace turbo {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Method", "AUC"});
  t.AddRow({"HAG", "83.13"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("83.13"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter t({"a", "b"});
  t.AddRow({"longer-name", "1"});
  t.AddRow({"x", "22"});
  std::string s = t.ToString();
  // Every line should have the same length.
  size_t first_len = s.find('\n');
  size_t pos = 0;
  while (pos < s.size()) {
    size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
}

TEST(TablePrinterTest, NumericRowFormatsPrecision) {
  TablePrinter t({"Method", "P", "R"});
  t.AddRow("LR", {89.586, 41.449}, 2);
  std::string s = t.ToString();
  EXPECT_NE(s.find("89.59"), std::string::npos);
  EXPECT_NE(s.find("41.45"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace turbo
