// Kill-a-shard chaos drill (the CI `recovery` job): a child process
// drives a 2-shard BnCluster under open-loop load — admission-
// controlled OfferIngest, periodic drains and epoch barriers, WAL with
// per-append fsync — while the parent continuously ships each shard's
// durability directory to a warm-standby replica, racing the writer on
// purpose (torn tails in flight are part of the contract). The parent
// then SIGKILLs the cluster mid-stream, promotes both standbys, and
// bit-compares every promoted shard against a ground-truth replay of
// that shard's independently decoded durable WAL prefix.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "server/bn_cluster.h"
#include "server/warm_standby.h"
#include "storage/wal.h"
#include "storage/wal_ship.h"

namespace turbo::server {
namespace {

constexpr int kShards = 2;

BnServerConfig CrashShardConfig() {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 64;
  cfg.snapshot_refresh = kHour;
  // Serial engine: the forked child must not depend on threads that
  // fork() does not carry over, and determinism holds at any count.
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.ingest_queue_capacity = 256;
  // Every append is durable before the in-memory apply, so whatever the
  // child managed to do is exactly what each shard's WAL holds.
  cfg.wal.fsync = storage::WalOptions::Fsync::kEveryAppend;
  return cfg;
}

/// Endless deterministic open-loop stream through the admission-
/// controlled front door. Never returns; dies by SIGKILL.
[[noreturn]] void RunDoomedCluster(const std::string& wal_root) {
  BnClusterConfig ccfg;
  ccfg.shard = CrashShardConfig();
  ccfg.num_shards = kShards;
  ccfg.wal_root = wal_root;
  BnCluster cluster(ccfg);
  uint64_t i = 0;
  for (SimTime t = 0;; t += 5 * kMinute, ++i) {
    const BehaviorLog a{static_cast<UserId>(i * 13 % 64),
                        BehaviorType::kIpv4, static_cast<ValueId>(1 + i % 9), t};
    const BehaviorLog b{static_cast<UserId>(i * 7 % 64),
                        BehaviorType::kWifiMac, static_cast<ValueId>(100 + i % 5), t};
    // Open loop: offer, drain when the rings fill, never block.
    if (!cluster.OfferIngest(a)) cluster.DrainIngest();
    if (!cluster.OfferIngest(b)) cluster.DrainIngest();
    if (i % 32 == 0) cluster.DrainIngest();
    if (t % kHour == 0) {
      cluster.DrainIngest();
      cluster.AdvanceTo(t);
    }
  }
}

size_t DurableWalBytes(const std::string& dir) {
  size_t total = 0;
  for (uint64_t seq : storage::ListWalSegments(dir)) {
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(storage::WalSegmentPath(dir, seq), ec);
    if (!ec) total += size;
  }
  return total;
}

void ExpectIdentical(const BnServer& a, const BnServer& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < 64; ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
}

TEST(ClusterCrashTest, SigkillUnderLoadPromotesBitIdenticalStandbys) {
  const std::string root = testing::TempDir() + "/cluster_crash";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  std::string shard_dirs[kShards];
  std::string replica_dirs[kShards];
  for (int s = 0; s < kShards; ++s) {
    shard_dirs[s] = BnCluster::ShardDir(root, s);
    replica_dirs[s] = root + "/replica-" + std::to_string(s);
    std::filesystem::create_directories(replica_dirs[s]);
  }

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    RunDoomedCluster(root);  // never returns
  }

  // Ship continuously while the child writes — the racing copies are
  // exactly the mid-append torn tails the standby protocol must absorb
  // — until every shard has durably logged a meaningful stream.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto all_past = [&](size_t bytes) {
    for (int s = 0; s < kShards; ++s) {
      if (DurableWalBytes(shard_dirs[s]) < bytes) return false;
    }
    return true;
  };
  while (!all_past(16 * 1024) &&
         std::chrono::steady_clock::now() < deadline) {
    for (int s = 0; s < kShards; ++s) {
      if (std::filesystem::exists(shard_dirs[s])) {
        ASSERT_TRUE(
            storage::ShipWalDir(shard_dirs[s], replica_dirs[s]).ok());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(all_past(16 * 1024)) << "child made no progress";
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Final ship: the primaries are dead, these bytes are the last word.
  for (int s = 0; s < kShards; ++s) {
    ASSERT_TRUE(storage::ShipWalDir(shard_dirs[s], replica_dirs[s]).ok());
  }

  // Shard layout identical to the doomed cluster's, for both the
  // standbys (checkpoint fingerprints) and the ground-truth replays
  // (the per-shard window-job key filter).
  BnClusterConfig layout;
  layout.shard = CrashShardConfig();
  layout.num_shards = kShards;
  ShardRouter router(
      [&] {
        bn::ShardTopology t = layout.shard.bn.topology;
        t.shard_count = kShards;
        return t;
      }());

  for (int s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    // Promote the warm standby over the shipped replica.
    WarmStandbyConfig scfg;
    scfg.server = CrashShardConfig();
    scfg.server.bn.topology = router.TopologyForShard(s);
    scfg.shard_index = s;
    scfg.replica_dir = replica_dirs[s];
    WarmStandby standby(scfg);
    ASSERT_TRUE(standby.CatchUp().ok());
    ASSERT_TRUE(standby.bootstrapped()) << "nothing was shipped";
    auto promoted_or = standby.Promote();
    ASSERT_TRUE(promoted_or.ok()) << promoted_or.status().message();
    BnServer* promoted = promoted_or.value();

    // Ground truth: independently decode this shard's durable WAL
    // prefix (last record may be torn away) into a clean WAL-less
    // server with the same shard topology.
    BnServerConfig ref_cfg = CrashShardConfig();
    ref_cfg.bn.topology = router.TopologyForShard(s);
    ref_cfg.ingest_queue_capacity = 0;
    BnServer reference(ref_cfg);
    size_t durable_records = 0;
    const auto seqs = storage::ListWalSegments(shard_dirs[s]);
    ASSERT_FALSE(seqs.empty());
    for (uint64_t seq : seqs) {
      auto segment_or = storage::ReadWalSegment(
          storage::WalSegmentPath(shard_dirs[s], seq));
      ASSERT_TRUE(segment_or.ok()) << segment_or.status().ToString();
      for (const auto& record : segment_or.value().records) {
        if (record.kind == storage::WalRecord::Kind::kIngest) {
          reference.Ingest(record.log);
        } else {
          reference.AdvanceTo(record.advance_to);
        }
        ++durable_records;
      }
    }
    ASSERT_GT(durable_records, 100u);
    ExpectIdentical(reference, *promoted);

    // The promoted shard is a live, durable primary.
    const SimTime next_hour = ((promoted->now() / kHour) + 1) * kHour;
    promoted->Ingest(
        BehaviorLog{1, BehaviorType::kIpv4, 4242, promoted->now()});
    promoted->AdvanceTo(next_hour);
    EXPECT_GT(promoted->jobs_run(), reference.jobs_run());
    EXPECT_GT(DurableWalBytes(replica_dirs[s]), 0u);
  }
}

}  // namespace
}  // namespace turbo::server
