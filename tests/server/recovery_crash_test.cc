// SIGKILL fault injection (the CI `recovery` job): a child process
// ingests through the WAL with per-append fsync, the parent kills it
// mid-stream with no chance to clean up, then recovers from the
// directory and checks the recovered state against a clean server fed
// the independently decoded durable WAL prefix.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "server/bn_server.h"
#include "storage/wal.h"

namespace turbo::server {
namespace {

BnServerConfig CrashConfig(const std::string& wal_dir) {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 64;
  cfg.snapshot_refresh = kHour;
  // Serial engine: the forked child must not depend on threads that
  // fork() does not carry over, and determinism holds at any count.
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.wal_dir = wal_dir;
  // Every append is durable before the in-memory apply, so whatever the
  // child managed to do is exactly what the WAL holds.
  cfg.wal.fsync = storage::WalOptions::Fsync::kEveryAppend;
  return cfg;
}

/// The child's traffic: endless deterministic stream, one log per step,
/// an AdvanceTo on every hour boundary. Never returns.
[[noreturn]] void RunDoomedChild(const std::string& dir) {
  BnServer server(CrashConfig(dir));
  uint64_t i = 0;
  for (SimTime t = 0;; t += 5 * kMinute, ++i) {
    server.Ingest(BehaviorLog{static_cast<UserId>(i * 13 % 64),
                              BehaviorType::kIpv4, 1 + i % 9, t});
    server.Ingest(BehaviorLog{static_cast<UserId>(i * 7 % 64),
                              BehaviorType::kWifiMac, 100 + i % 5, t});
    if (t % kHour == 0) server.AdvanceTo(t);
  }
}

size_t DurableWalBytes(const std::string& dir) {
  size_t total = 0;
  for (uint64_t seq : storage::ListWalSegments(dir)) {
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(storage::WalSegmentPath(dir, seq), ec);
    if (!ec) total += size;
  }
  return total;
}

TEST(RecoveryCrashTest, SigkillMidIngestRecoversTheDurablePrefix) {
  const std::string dir = testing::TempDir() + "/crash_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    RunDoomedChild(dir);  // never returns; dies by SIGKILL
  }
  // Wait until the child has durably logged a meaningful stream (well
  // past several AdvanceTo consistency points), then kill it with no
  // warning — SIGKILL cannot be caught, so no destructor runs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (DurableWalBytes(dir) < 16 * 1024 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(DurableWalBytes(dir), 16u * 1024u) << "child made no progress";
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // Independently decode the durable records (the last one may be torn
  // — a crash mid-append loses only that record) and feed them to a
  // clean WAL-less server: the ground truth for what recovery must
  // reproduce.
  BnServer reference(CrashConfig(""));
  size_t durable_records = 0;
  const auto seqs = storage::ListWalSegments(dir);
  ASSERT_FALSE(seqs.empty());
  for (size_t i = 0; i < seqs.size(); ++i) {
    auto segment_or =
        storage::ReadWalSegment(storage::WalSegmentPath(dir, seqs[i]));
    ASSERT_TRUE(segment_or.ok()) << segment_or.status().ToString();
    for (const auto& record : segment_or.value().records) {
      if (record.kind == storage::WalRecord::Kind::kIngest) {
        reference.Ingest(record.log);
      } else {
        reference.AdvanceTo(record.advance_to);
      }
      ++durable_records;
    }
  }
  ASSERT_GT(durable_records, 100u);

  BnServer recovered(CrashConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());

  // Bit-identical to the ground-truth replay: clock, job count, log
  // count, and every edge weight's exact double bits.
  EXPECT_EQ(recovered.now(), reference.now());
  EXPECT_EQ(recovered.jobs_run(), reference.jobs_run());
  EXPECT_EQ(recovered.logs().size(), reference.logs().size());
  EXPECT_EQ(recovered.snapshot_version(), reference.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(recovered.edges().NumEdges(t), reference.edges().NumEdges(t));
    for (UserId u = 0; u < 64; ++u) {
      const auto& na = recovered.edges().Neighbors(t, u);
      const auto& nb = reference.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end());
        EXPECT_EQ(e.weight, it->second.weight);
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }

  // The recovered server keeps working and keeps logging.
  const SimTime next_hour = ((recovered.now() / kHour) + 1) * kHour;
  recovered.Ingest(
      BehaviorLog{1, BehaviorType::kIpv4, 4242, recovered.now()});
  recovered.AdvanceTo(next_hour);
  EXPECT_GT(recovered.jobs_run(), reference.jobs_run());
}

}  // namespace
}  // namespace turbo::server
