#include "server/bn_server.h"

#include <gtest/gtest.h>

namespace turbo::server {
namespace {

constexpr BehaviorType kIp = BehaviorType::kIpv4;
const int kIpIdx = EdgeTypeIndex(kIp);

BnServerConfig SmallConfig() {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 100;
  cfg.snapshot_refresh = kHour;
  return cfg;
}

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, kIp, v, t};
}

TEST(BnServerTest, WindowJobsRunOnSchedule) {
  BnServer server(SmallConfig());
  server.AdvanceTo(3 * kHour);
  // 1-hour window ran 3 times; 1-day window not yet.
  EXPECT_EQ(server.jobs_run(), 3u);
  server.AdvanceTo(kDay);
  // 24 hourly + 1 daily.
  EXPECT_EQ(server.jobs_run(), 25u);
}

TEST(BnServerTest, IngestedCoOccurrenceBecomesEdge) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  EXPECT_GT(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
}

TEST(BnServerTest, ShorterWindowJobRunsBeforeLarger) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  const float after_hourly = server.edges().Weight(kIpIdx, 1, 2);
  EXPECT_FLOAT_EQ(after_hourly, 0.5f);  // hourly job only
  server.AdvanceTo(kDay);
  // Daily job adds its own 1/2.
  EXPECT_FLOAT_EQ(server.edges().Weight(kIpIdx, 1, 2), 1.0f);
}

TEST(BnServerTest, SamplingServesSnapshot) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  auto sg = server.SampleSubgraph(1);
  EXPECT_EQ(sg.nodes[0], 1u);
  EXPECT_EQ(sg.nodes.size(), 2u);
  EXPECT_GE(sg.NumEdges(), 1u);
}

TEST(BnServerTest, SnapshotIsRefreshedOnCadence) {
  BnServerConfig cfg = SmallConfig();
  cfg.snapshot_refresh = 2 * kHour;
  BnServer server(cfg);
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);  // first snapshot
  // New logs for another pair; within refresh interval the snapshot is
  // stale.
  server.Ingest(L(3, 77, kHour + 10 * kMinute));
  server.Ingest(L(4, 77, kHour + 20 * kMinute));
  server.AdvanceTo(2 * kHour);
  auto stale = server.SampleSubgraph(3);
  EXPECT_EQ(stale.nodes.size(), 1u);  // not yet visible
  server.AdvanceTo(3 * kHour + 1);    // past refresh cadence
  auto fresh = server.SampleSubgraph(3);
  EXPECT_EQ(fresh.nodes.size(), 2u);
}

TEST(BnServerTest, TtlSweepExpiresOldEdges) {
  BnServerConfig cfg = SmallConfig();
  cfg.bn.edge_ttl = 5 * kDay;
  BnServer server(cfg);
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kDay);
  EXPECT_GT(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
  server.AdvanceTo(10 * kDay);
  EXPECT_FLOAT_EQ(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
  EXPECT_GT(server.edges_expired(), 0u);
}

TEST(BnServerTest, IngestLagGaugeTracksSlowestWindowFrontier) {
  obs::MetricsRegistry metrics;
  BnServerConfig cfg = SmallConfig();
  cfg.metrics = &metrics;
  BnServer server(cfg);
  auto* lag = metrics.GetGauge("bn_ingest_lag_s");
  server.AdvanceTo(kDay);
  // Both the hourly and the daily frontier sit exactly at the clock.
  EXPECT_DOUBLE_EQ(lag->value(), 0.0);
  server.AdvanceTo(kDay + 30 * kMinute);
  // The daily job won't run again until t = 2d: the slowest frontier
  // trails the clock by 30 minutes.
  EXPECT_DOUBLE_EQ(lag->value(), static_cast<double>(30 * kMinute));
}

TEST(BnServerTest, CatchUpAdvanceMatchesSteadyAdvance) {
  // Advancing in one big jump after an idle gap must replay the exact
  // job schedule of hour-by-hour advancement: same weights, bit for bit,
  // for the serial and the sharded engine.
  for (int threads : {1, 0}) {  // 1 = serial shards, 0 = pooled shards
    BnServerConfig cfg = SmallConfig();
    cfg.window_job_threads = threads;
    BnServer steady(cfg), catchup(cfg);
    BehaviorLogList logs;
    for (int i = 0; i < 200; ++i) {
      logs.push_back(L(static_cast<UserId>(i % 40), 1 + i % 7,
                       (i * 17 * kMinute) % (2 * kDay)));
    }
    steady.IngestBatch(logs);
    catchup.IngestBatch(logs);
    for (SimTime t = kHour; t <= 2 * kDay; t += kHour) steady.AdvanceTo(t);
    catchup.AdvanceTo(2 * kDay);
    EXPECT_EQ(steady.jobs_run(), catchup.jobs_run());
    for (UserId u = 0; u < 40; ++u) {
      const auto& a = steady.edges().Neighbors(kIpIdx, u);
      const auto& b = catchup.edges().Neighbors(kIpIdx, u);
      ASSERT_EQ(a.size(), b.size()) << "u=" << u;
      for (const auto& [v, e] : a) {
        ASSERT_EQ(e.weight, b.at(v).weight) << "edge " << u << "-" << v;
      }
    }
  }
}

TEST(BnServerDeathTest, IngestNegativeTimestampAborts) {
  BnServer server(SmallConfig());
  EXPECT_DEATH(server.Ingest(L(1, 42, -5)), "negative timestamp");
}

TEST(BnServerDeathTest, SamplingBeforeAdvanceAborts) {
  BnServer server(SmallConfig());
  EXPECT_DEATH(server.SampleSubgraph(1), "AdvanceTo");
}

TEST(BnServerDeathTest, ClockCannotGoBackwards) {
  BnServer server(SmallConfig());
  server.AdvanceTo(kHour);
  EXPECT_DEATH(server.AdvanceTo(kHour - 1), "CHECK failed");
}

TEST(BnServerDeathTest, IngestOutOfRangeUidAborts) {
  BnServer server(SmallConfig());
  EXPECT_DEATH(server.Ingest(L(100, 1, 0)), "CHECK failed");
}

}  // namespace
}  // namespace turbo::server
