#include "server/bn_server.h"

#include <gtest/gtest.h>

namespace turbo::server {
namespace {

constexpr BehaviorType kIp = BehaviorType::kIpv4;
const int kIpIdx = EdgeTypeIndex(kIp);

BnServerConfig SmallConfig() {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 100;
  cfg.snapshot_refresh = kHour;
  return cfg;
}

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, kIp, v, t};
}

TEST(BnServerTest, WindowJobsRunOnSchedule) {
  BnServer server(SmallConfig());
  server.AdvanceTo(3 * kHour);
  // 1-hour window ran 3 times; 1-day window not yet.
  EXPECT_EQ(server.jobs_run(), 3u);
  server.AdvanceTo(kDay);
  // 24 hourly + 1 daily.
  EXPECT_EQ(server.jobs_run(), 25u);
}

TEST(BnServerTest, IngestedCoOccurrenceBecomesEdge) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  EXPECT_GT(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
}

TEST(BnServerTest, ShorterWindowJobRunsBeforeLarger) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  const float after_hourly = server.edges().Weight(kIpIdx, 1, 2);
  EXPECT_FLOAT_EQ(after_hourly, 0.5f);  // hourly job only
  server.AdvanceTo(kDay);
  // Daily job adds its own 1/2.
  EXPECT_FLOAT_EQ(server.edges().Weight(kIpIdx, 1, 2), 1.0f);
}

TEST(BnServerTest, SamplingServesSnapshot) {
  BnServer server(SmallConfig());
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);
  auto sg = server.SampleSubgraph(1);
  EXPECT_EQ(sg.nodes[0], 1u);
  EXPECT_EQ(sg.nodes.size(), 2u);
  EXPECT_GE(sg.NumEdges(), 1u);
}

TEST(BnServerTest, SnapshotIsRefreshedOnCadence) {
  BnServerConfig cfg = SmallConfig();
  cfg.snapshot_refresh = 2 * kHour;
  BnServer server(cfg);
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);  // first snapshot
  // New logs for another pair; within refresh interval the snapshot is
  // stale.
  server.Ingest(L(3, 77, kHour + 10 * kMinute));
  server.Ingest(L(4, 77, kHour + 20 * kMinute));
  server.AdvanceTo(2 * kHour);
  auto stale = server.SampleSubgraph(3);
  EXPECT_EQ(stale.nodes.size(), 1u);  // not yet visible
  server.AdvanceTo(3 * kHour + 1);    // past refresh cadence
  auto fresh = server.SampleSubgraph(3);
  EXPECT_EQ(fresh.nodes.size(), 2u);
}

TEST(BnServerTest, TtlSweepExpiresOldEdges) {
  BnServerConfig cfg = SmallConfig();
  cfg.bn.edge_ttl = 5 * kDay;
  BnServer server(cfg);
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kDay);
  EXPECT_GT(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
  server.AdvanceTo(10 * kDay);
  EXPECT_FLOAT_EQ(server.edges().Weight(kIpIdx, 1, 2), 0.0f);
  EXPECT_GT(server.edges_expired(), 0u);
}

TEST(BnServerDeathTest, SamplingBeforeAdvanceAborts) {
  BnServer server(SmallConfig());
  EXPECT_DEATH(server.SampleSubgraph(1), "AdvanceTo");
}

TEST(BnServerDeathTest, ClockCannotGoBackwards) {
  BnServer server(SmallConfig());
  server.AdvanceTo(kHour);
  EXPECT_DEATH(server.AdvanceTo(kHour - 1), "CHECK failed");
}

TEST(BnServerDeathTest, IngestOutOfRangeUidAborts) {
  BnServer server(SmallConfig());
  EXPECT_DEATH(server.Ingest(L(100, 1, 0)), "CHECK failed");
}

}  // namespace
}  // namespace turbo::server
