// Concurrent serving: HandleBatch hammered from several threads while
// the writer keeps running window jobs and publishing snapshots. Run
// under TSan in the sanitizer workflow — the assertions matter, but the
// real product is the absence of data-race reports across the lock-free
// snapshot path, the feature store, and the prediction cache.
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/turbo.h"
#include "server/prediction_server.h"

namespace turbo::server {
namespace {

class PredictionServerConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int kUsers = 400;

  static void SetUpTestSuite() {
    auto ds =
        datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(kUsers));
    core::PipelineConfig pcfg;
    pcfg.bn.windows = {kHour, 6 * kHour, kDay};
    data_ = core::PrepareData(std::move(ds), pcfg).release();
    core::HagConfig hcfg;
    hcfg.hidden = {8, 4};
    hcfg.attention_dim = 4;
    hcfg.mlp_hidden = 4;
    model_ = new core::Hag(hcfg);
    gnn::TrainConfig tcfg;
    tcfg.epochs = 5;
    core::TrainAndScoreGnn(model_, *data_, bn::SamplerConfig{}, tcfg);

    BnServerConfig bcfg;
    bcfg.bn = pcfg.bn;
    bcfg.num_users = kUsers;
    bcfg.snapshot_refresh = kHour;
    bn_ = new BnServer(bcfg);
    bn_->IngestBatch(data_->dataset.logs);
    bn_->AdvanceTo(7 * kDay);

    features::FeatureStoreConfig fcfg;
    features_ = new features::FeatureStore(fcfg, &bn_->logs());
    for (UserId u = 0; u < kUsers; ++u) {
      const float* row = data_->dataset.profile_features.row(u);
      features_->PutProfile(
          u, std::vector<float>(
                 row, row + data_->dataset.profile_features.cols()));
    }
  }
  static void TearDownTestSuite() {
    delete features_;
    delete bn_;
    delete model_;
    delete data_;
    features_ = nullptr;
  }

  static PredictionConfig ServingConfig() {
    PredictionConfig cfg;
    cfg.use_inference_path = true;
    cfg.cache_capacity = 256;
    return cfg;
  }

  static core::PreparedData* data_;
  static core::Hag* model_;
  static BnServer* bn_;
  static features::FeatureStore* features_;
};

core::PreparedData* PredictionServerConcurrencyTest::data_ = nullptr;
core::Hag* PredictionServerConcurrencyTest::model_ = nullptr;
BnServer* PredictionServerConcurrencyTest::bn_ = nullptr;
features::FeatureStore* PredictionServerConcurrencyTest::features_ =
    nullptr;

TEST_F(PredictionServerConcurrencyTest,
       HandleBatchRacesWindowJobsAndSnapshotPublishes) {
  PredictionServer server(ServingConfig(), bn_, features_, model_,
                          &data_->scaler);
  constexpr int kThreads = 4;
  constexpr int kIterations = 12;
  constexpr int kBatch = 4;

  std::mutex mu;
  std::set<uint64_t> seen_ids;
  size_t responses = 0;

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        std::vector<UserId> uids;
        for (int b = 0; b < kBatch; ++b) {
          uids.push_back(static_cast<UserId>(
              (t * kIterations * kBatch + it * kBatch + b) % kUsers));
        }
        auto resps = server.HandleBatch(uids);
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& r : resps) {
          EXPECT_GE(r.fraud_probability, 0.0);
          EXPECT_LE(r.fraud_probability, 1.0);
          EXPECT_EQ(r.batch_size, kBatch);
          EXPECT_GT(r.snapshot_version, 0u);
          // Ids must be globally unique — the old value() readback
          // handed duplicate ids to concurrent requests.
          EXPECT_TRUE(seen_ids.insert(r.request_id).second)
              << "duplicate request id " << r.request_id;
          ++responses;
        }
      }
    });
  }
  // Writer: advance time so window jobs run and snapshots publish while
  // the readers sample.
  SimTime t = bn_->now();
  for (int i = 0; i < 40; ++i) {
    t += kHour / 2;
    bn_->AdvanceTo(t);
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(responses,
            static_cast<size_t>(kThreads) * kIterations * kBatch);
  EXPECT_EQ(server.metrics().RenderJson().empty(), false);
}

TEST_F(PredictionServerConcurrencyTest, BatchIdsAreContiguousAndOrdered) {
  PredictionServer server(ServingConfig(), bn_, features_, model_,
                          &data_->scaler);
  auto resps = server.HandleBatch({1, 2, 3, 4, 5});
  ASSERT_EQ(resps.size(), 5u);
  for (size_t i = 0; i < resps.size(); ++i) {
    EXPECT_EQ(resps[i].request_id, resps[0].request_id + i);
    EXPECT_EQ(resps[i].batch_size, 5);
    EXPECT_NEAR(resps[i].total_ms,
                resps[i].sampling_ms + resps[i].feature_ms +
                    resps[i].inference_ms,
                1e-9);
  }
}

TEST_F(PredictionServerConcurrencyTest, CacheHitsKeyOnSnapshotVersion) {
  PredictionServer server(ServingConfig(), bn_, features_, model_,
                          &data_->scaler);
  const UserId uid = 7;
  auto first = server.Handle(uid);
  EXPECT_FALSE(first.cache_hit);
  auto second = server.Handle(uid);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.fraud_probability, first.fraud_probability);
  EXPECT_EQ(second.snapshot_version, first.snapshot_version);

  // A new snapshot publish invalidates the cache (keys carry the
  // version).
  const uint64_t before = bn_->snapshot_version();
  SimTime t = bn_->now();
  while (bn_->snapshot_version() == before) {
    t += kHour;
    bn_->AdvanceTo(t);
  }
  auto third = server.Handle(uid);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_GT(third.snapshot_version, first.snapshot_version);
}

TEST_F(PredictionServerConcurrencyTest, SubmitAsyncCoalescesIntoBatches) {
  PredictionServer server(ServingConfig(), bn_, features_, model_,
                          &data_->scaler);
  BatchingConfig bcfg;
  bcfg.max_batch_size = 8;
  bcfg.workers = 2;
  bcfg.max_wait_ms = 2.0;
  server.StartBatching(bcfg);

  std::vector<std::future<PredictionResponse>> futures;
  for (UserId u = 0; u < 32; ++u) {
    futures.push_back(server.SubmitAsync(u % kUsers));
  }
  int batched = 0;
  for (auto& f : futures) {
    auto resp = f.get();
    EXPECT_GE(resp.fraud_probability, 0.0);
    EXPECT_LE(resp.fraud_probability, 1.0);
    EXPECT_GE(resp.batch_size, 1);
    EXPECT_LE(resp.batch_size, bcfg.max_batch_size);
    if (resp.batch_size > 1) ++batched;
  }
  server.StopBatching();
  // With 32 rapid submissions against 2 workers, at least some requests
  // must have shared a batch.
  EXPECT_GT(batched, 0);

  // After StopBatching, SubmitAsync degrades to synchronous handling.
  auto resp = server.SubmitAsync(3).get();
  EXPECT_EQ(resp.batch_size, 1);
}

}  // namespace
}  // namespace turbo::server
