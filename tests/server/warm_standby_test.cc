// WarmStandby replay protocol (DESIGN.md §14): a standby continuously
// replaying shipped WAL is bit-identical to its primary at every
// caught-up point, waits (never truncates) on a torn tail that is still
// being shipped, never reapplies a re-shipped duplicate, fails loudly
// on a sequence gap, and promotes into a durable primary.
#include "server/warm_standby.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/wal.h"
#include "storage/wal_ship.h"

namespace turbo::server {
namespace {

namespace fs = std::filesystem;

constexpr int kUsers = 64;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

BnServerConfig SmallConfig(const std::string& wal_dir = "") {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = kUsers;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.wal_dir = wal_dir;
  return cfg;
}

BehaviorLogList Traffic(SimTime t0, SimTime t1, int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = t0 + (i * 977 * kMinute) % (t1 - t0);
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 13 % kUsers),
                               BehaviorType::kIpv4, static_cast<ValueId>(1 + i % 9), t});
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % kUsers),
                               BehaviorType::kWifiMac, static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

void ExpectIdentical(const BnServer& a, const BnServer& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.edges_expired(), b.edges_expired());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < kUsers; ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
}

struct Rig {
  std::string primary_dir;
  std::string replica_dir;
  std::unique_ptr<BnServer> primary;
  std::unique_ptr<WarmStandby> standby;

  explicit Rig(const std::string& name) {
    primary_dir = FreshDir(name + "_primary");
    replica_dir = FreshDir(name + "_replica");
    primary = std::make_unique<BnServer>(SmallConfig(primary_dir));
    WarmStandbyConfig scfg;
    scfg.server = SmallConfig();
    scfg.replica_dir = replica_dir;
    standby = std::make_unique<WarmStandby>(scfg);
  }

  void Ship() {
    auto stats_or = storage::ShipWalDir(primary_dir, replica_dir);
    ASSERT_TRUE(stats_or.ok()) << stats_or.status().message();
  }
};

TEST(WarmStandbyTest, WaitsWhileNothingIsShipped) {
  Rig rig("standby_wait");
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  EXPECT_FALSE(rig.standby->bootstrapped());
  EXPECT_EQ(rig.standby->server(), nullptr);
}

TEST(WarmStandbyTest, ContinuousCatchUpTracksThePrimaryBitForBit) {
  Rig rig("standby_track");
  // Round 1: WAL-only bootstrap.
  rig.primary->IngestBatch(Traffic(0, kDay, 120));
  rig.primary->AdvanceTo(kDay);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  ASSERT_TRUE(rig.standby->bootstrapped());
  ExpectIdentical(*rig.primary, *rig.standby->server());

  // Round 2+: incremental records onto the same segment chain.
  for (int round = 1; round <= 3; ++round) {
    const SimTime t0 = kDay + (round - 1) * 5 * kHour;
    rig.primary->IngestBatch(Traffic(t0, t0 + 5 * kHour, 40));
    rig.primary->AdvanceTo(t0 + 5 * kHour);
    rig.Ship();
    ASSERT_TRUE(rig.standby->CatchUp().ok()) << "round " << round;
    ExpectIdentical(*rig.primary, *rig.standby->server());
  }
  // The standby serves lock-free reads the whole time.
  EXPECT_GT(rig.standby->server()->snapshot_version(), 0u);
  EXPECT_GT(rig.standby->records_applied_total(), 0u);
}

TEST(WarmStandbyTest, DuplicateReshipAppliesNothing) {
  Rig rig("standby_dup");
  rig.primary->IngestBatch(Traffic(0, kDay, 80));
  rig.primary->AdvanceTo(kDay);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  const uint64_t applied = rig.standby->records_applied_total();
  const size_t logs = rig.standby->server()->logs().size();

  // Ship again (no-op) and catch up again: same files, zero new work.
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  EXPECT_EQ(rig.standby->records_applied_total(), applied);
  EXPECT_EQ(rig.standby->server()->logs().size(), logs);
  ExpectIdentical(*rig.primary, *rig.standby->server());
}

TEST(WarmStandbyTest, TornFinalSegmentWaitsThenResumes) {
  Rig rig("standby_torn");
  rig.primary->IngestBatch(Traffic(0, kDay, 60));
  rig.primary->AdvanceTo(kDay);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());

  // The primary appends more records; the ship races it and copies a
  // torn tail. Simulate by shipping, then cutting the replica's final
  // segment mid-record (the bytes the racing ship did not see yet).
  rig.primary->IngestBatch(Traffic(kDay, kDay + 2 * kHour, 30));
  rig.primary->AdvanceTo(kDay + 2 * kHour);
  rig.Ship();
  const std::vector<uint64_t> seqs = storage::ListWalSegments(rig.replica_dir);
  ASSERT_FALSE(seqs.empty());
  const std::string last = storage::WalSegmentPath(rig.replica_dir, seqs.back());
  const size_t full_size = static_cast<size_t>(fs::file_size(last));
  fs::resize_file(last, full_size - 3);
  auto torn_or = storage::ReadWalSegment(last);
  ASSERT_TRUE(torn_or.ok());
  ASSERT_TRUE(torn_or.value().torn);
  const size_t prefix_records = torn_or.value().records.size();

  // CatchUp applies the valid prefix, then WAITS: OK status, no
  // truncation of the replica file.
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  EXPECT_EQ(rig.standby->applied_seq(), seqs.back());
  EXPECT_EQ(rig.standby->applied_records(), prefix_records);
  EXPECT_EQ(static_cast<size_t>(fs::file_size(last)), full_size - 3);

  // The next ship completes the record; replay resumes past the former
  // tear and lands bit-identical — nothing was reapplied or lost.
  rig.Ship();
  ASSERT_EQ(static_cast<size_t>(fs::file_size(last)), full_size);
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  ExpectIdentical(*rig.primary, *rig.standby->server());
}

TEST(WarmStandbyTest, SequenceGapFailsLoudlyAndRebootstrapRecovers) {
  Rig rig("standby_gap");
  rig.primary->IngestBatch(Traffic(0, kDay, 80));
  rig.primary->AdvanceTo(kDay);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());

  // Checkpoint rotation on the primary deletes the segments this
  // standby was consuming; the mirror-delete ship propagates that.
  rig.primary->IngestBatch(Traffic(kDay, kDay + 3 * kHour, 40));
  rig.primary->AdvanceTo(kDay + 3 * kHour);
  ASSERT_TRUE(rig.primary->Checkpoint(rig.primary_dir).ok());
  rig.primary->IngestBatch(Traffic(kDay + 3 * kHour, kDay + 6 * kHour, 40));
  rig.primary->AdvanceTo(kDay + 6 * kHour);
  rig.Ship();

  const Status gap = rig.standby->CatchUp();
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.code(), StatusCode::kInternal);
  EXPECT_NE(gap.message().find("replication gap"), std::string::npos)
      << gap.message();

  // The documented way back: rebuild from the shipped checkpoint.
  ASSERT_TRUE(rig.standby->Rebootstrap().ok());
  ExpectIdentical(*rig.primary, *rig.standby->server());
}

TEST(WarmStandbyTest, PromoteSealsTornTailAndBecomesDurablePrimary) {
  Rig rig("standby_promote");
  rig.primary->IngestBatch(Traffic(0, kDay, 100));
  rig.primary->AdvanceTo(kDay);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());

  // The primary dies mid-append: the last shipped segment ends torn.
  const std::vector<uint64_t> seqs = storage::ListWalSegments(rig.replica_dir);
  ASSERT_FALSE(seqs.empty());
  const std::string last = storage::WalSegmentPath(rig.replica_dir, seqs.back());
  auto before_or = storage::ReadWalSegment(last);
  ASSERT_TRUE(before_or.ok());
  const size_t clean_records = before_or.value().records.size();
  {
    // Append garbage: the start of a record the primary never finished.
    std::ofstream out(last, std::ios::binary | std::ios::app);
    out.write("\x01\xff\xff", 3);
  }
  rig.primary.reset();  // declared dead

  auto promoted_or = rig.standby->Promote();
  ASSERT_TRUE(promoted_or.ok()) << promoted_or.status().message();
  BnServer* promoted = promoted_or.value();
  EXPECT_TRUE(rig.standby->promoted());
  // The tear was sealed: the replica segment reads clean again with
  // exactly the records that were durable.
  auto after_or = storage::ReadWalSegment(last);
  ASSERT_TRUE(after_or.ok());
  EXPECT_FALSE(after_or.value().torn);
  EXPECT_EQ(after_or.value().records.size(), clean_records);

  // The promoted server is a real primary: new writes are durable in
  // the adopted directory and a cold Recover reproduces them.
  promoted->IngestBatch(Traffic(kDay, kDay + 4 * kHour, 50));
  promoted->AdvanceTo(kDay + 4 * kHour);
  BnServer recovered(SmallConfig(rig.replica_dir));
  ASSERT_TRUE(recovered.Recover(rig.replica_dir).ok());
  ExpectIdentical(*promoted, recovered);
}

TEST(WarmStandbyTest, PromoteWithoutShippedStateIsRefused) {
  Rig rig("standby_empty_promote");
  auto promoted_or = rig.standby->Promote();
  ASSERT_FALSE(promoted_or.ok());
  EXPECT_EQ(promoted_or.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WarmStandbyTest, BootstrapFromShippedCheckpointPlusWalTail) {
  // A standby that attaches late — after the primary already
  // checkpointed — bootstraps from checkpoint + WAL tail, not just WAL.
  Rig rig("standby_late");
  rig.primary->IngestBatch(Traffic(0, kDay, 100));
  rig.primary->AdvanceTo(kDay);
  ASSERT_TRUE(rig.primary->Checkpoint(rig.primary_dir).ok());
  rig.primary->IngestBatch(Traffic(kDay, kDay + 5 * kHour, 50));
  rig.primary->AdvanceTo(kDay + 5 * kHour);
  rig.Ship();
  ASSERT_TRUE(rig.standby->CatchUp().ok());
  ASSERT_TRUE(rig.standby->bootstrapped());
  ExpectIdentical(*rig.primary, *rig.standby->server());
  // Replication metrics track the replay cursor.
  const std::string text = rig.standby->metrics().RenderText();
  EXPECT_NE(text.find("bn_replica_shard0_applied_seq"), std::string::npos);
  EXPECT_NE(text.find("bn_replica_shard0_records_applied_total"),
            std::string::npos);
}

}  // namespace
}  // namespace turbo::server
