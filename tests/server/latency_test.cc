#include "server/latency.h"

#include <gtest/gtest.h>

namespace turbo::server {
namespace {

TEST(LatencyTest, EmptyTrackerIsZero) {
  LatencyTracker t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 0.0);
}

TEST(LatencyTest, MeanAndMax) {
  LatencyTracker t;
  for (double v : {1.0, 2.0, 3.0, 10.0}) t.Record(v);
  EXPECT_DOUBLE_EQ(t.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(t.Max(), 10.0);
}

TEST(LatencyTest, PercentilesNearestRank) {
  LatencyTracker t;
  for (int i = 1; i <= 100; ++i) t.Record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 1.0);
}

TEST(LatencyTest, RecordAfterPercentileStaysCorrect) {
  LatencyTracker t;
  t.Record(5.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 5.0);
  t.Record(1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.0), 1.0);
}

TEST(LatencyTest, P999IsTailSensitive) {
  LatencyTracker t;
  for (int i = 0; i < 1999; ++i) t.Record(1.0);
  t.Record(500.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(0.999), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(1.0), 500.0);
}

TEST(LatencyTest, SummaryContainsFields) {
  LatencyTracker t;
  t.Record(2.5);
  auto s = t.Summary("module");
  EXPECT_NE(s.find("module"), std::string::npos);
  EXPECT_NE(s.find("p999"), std::string::npos);
}

TEST(LatencyDeathTest, NegativeSampleAborts) {
  LatencyTracker t;
  EXPECT_DEATH(t.Record(-1.0), "CHECK failed");
}

}  // namespace
}  // namespace turbo::server
