// Admission control under load (DESIGN.md "Open-loop load & admission
// control"): the bounded ingest ring in front of BnServer, deadline
// shedding and queue-cap rejection in the prediction batching queue,
// and the open-loop load generator's accounting invariants. The served
// path must be byte-for-byte unaffected by admission control — shedding
// may only remove work, never change it.
#include <chrono>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "core/turbo.h"
#include "server/bn_server.h"
#include "server/load_gen.h"
#include "server/prediction_server.h"

namespace turbo::server {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------
// BnServer ingest ring: equivalence with direct ingestion, backpressure.

BnServerConfig RingConfig(size_t ring_capacity) {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 64;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.ingest_queue_capacity = ring_capacity;
  return cfg;
}

BehaviorLogList RingTraffic(int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = (i * 977L * kMinute) % kDay;
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 13 % 64),
                               BehaviorType::kIpv4,
                               static_cast<ValueId>(1 + i % 9), t});
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % 64),
                               BehaviorType::kWifiMac,
                               static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

TEST(IngestRingTest, OfferPlusDrainMatchesDirectIngest) {
  const BehaviorLogList traffic = RingTraffic(300);

  BnServer direct(RingConfig(0));
  direct.IngestBatch(traffic);
  direct.AdvanceTo(2 * kDay);

  BnServer queued(RingConfig(64));
  size_t applied = 0;
  for (const auto& log : traffic) {
    // The ring is smaller than the traffic, so the producer must yield
    // to the writer; a full ring here is backpressure working, not a
    // failure.
    while (!queued.OfferIngest(log)) {
      applied += queued.DrainIngest();
    }
  }
  applied += queued.DrainIngest();
  queued.AdvanceTo(2 * kDay);

  // The drained server is bit-identical to the direct one: same clock,
  // job frontiers, raw-log count, and exact edge-weight bits.
  EXPECT_EQ(applied, traffic.size());
  EXPECT_EQ(queued.ingest_queue_depth(), 0u);
  EXPECT_EQ(queued.now(), direct.now());
  EXPECT_EQ(queued.jobs_run(), direct.jobs_run());
  EXPECT_EQ(queued.logs().size(), direct.logs().size());
  EXPECT_EQ(queued.snapshot_version(), direct.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(queued.edges().NumEdges(t), direct.edges().NumEdges(t))
        << "type " << t;
    for (UserId u = 0; u < 64; ++u) {
      const auto& nq = queued.edges().Neighbors(t, u);
      const auto& nd = direct.edges().Neighbors(t, u);
      ASSERT_EQ(nq.size(), nd.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : nd) {
        auto it = nq.find(v);
        ASSERT_NE(it, nq.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
}

TEST(IngestRingTest, FullRingRejectsAndCounts) {
  obs::MetricsRegistry registry;
  BnServerConfig cfg = RingConfig(8);
  cfg.metrics = &registry;
  BnServer server(cfg);

  const BehaviorLog log{3, BehaviorType::kIpv4, 7, kHour};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server.OfferIngest(log)) << i;
  }
  EXPECT_FALSE(server.OfferIngest(log));
  EXPECT_FALSE(server.OfferIngest(log));
  EXPECT_EQ(registry.GetCounter("bn_ingest_rejected_total")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("bn_ingest_queued_total")->value(), 8u);
  EXPECT_EQ(server.ingest_queue_depth(), 8u);

  // Rejected logs were dropped, accepted ones apply exactly once.
  EXPECT_EQ(server.DrainIngest(), 8u);
  EXPECT_EQ(server.logs().size(), 8u);
  EXPECT_EQ(server.ingest_queue_depth(), 0u);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("bn_ingest_rejected_total"), std::string::npos);
  EXPECT_NE(text.find("bn_ingest_queue_depth"), std::string::npos);
}

// ---------------------------------------------------------------------
// PredictionServer deadlines + queue cap, over a real serving stack.

class AdmissionControlTest : public ::testing::Test {
 protected:
  static constexpr int kUsers = 400;

  static void SetUpTestSuite() {
    auto ds =
        datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(kUsers));
    core::PipelineConfig pcfg;
    pcfg.bn.windows = {kHour, 6 * kHour, kDay};
    data_ = core::PrepareData(std::move(ds), pcfg).release();
    core::HagConfig hcfg;
    hcfg.hidden = {8, 4};
    hcfg.attention_dim = 4;
    hcfg.mlp_hidden = 4;
    model_ = new core::Hag(hcfg);
    gnn::TrainConfig tcfg;
    tcfg.epochs = 5;
    core::TrainAndScoreGnn(model_, *data_, bn::SamplerConfig{}, tcfg);

    BnServerConfig bcfg;
    bcfg.bn = pcfg.bn;
    bcfg.num_users = kUsers;
    bcfg.snapshot_refresh = kHour;
    bcfg.ingest_queue_capacity = 1024;  // for the load-generator test
    bn_ = new BnServer(bcfg);
    bn_->IngestBatch(data_->dataset.logs);
    bn_->AdvanceTo(7 * kDay);

    features::FeatureStoreConfig fcfg;
    features_ = new features::FeatureStore(fcfg, &bn_->logs());
    for (UserId u = 0; u < kUsers; ++u) {
      const float* row = data_->dataset.profile_features.row(u);
      features_->PutProfile(
          u, std::vector<float>(
                 row, row + data_->dataset.profile_features.cols()));
    }
  }
  static void TearDownTestSuite() {
    delete features_;
    delete bn_;
    delete model_;
    delete data_;
    features_ = nullptr;
  }

  /// Deterministic serving path: no cache (every request computes) and
  /// the tape-free inference kernels, like the open-loop bench.
  static PredictionConfig ServingConfig(obs::MetricsRegistry* registry) {
    PredictionConfig cfg;
    cfg.use_inference_path = true;
    cfg.cache_capacity = 0;
    cfg.metrics = registry;
    return cfg;
  }

  static core::PreparedData* data_;
  static core::Hag* model_;
  static BnServer* bn_;
  static features::FeatureStore* features_;
};

core::PreparedData* AdmissionControlTest::data_ = nullptr;
core::Hag* AdmissionControlTest::model_ = nullptr;
BnServer* AdmissionControlTest::bn_ = nullptr;
features::FeatureStore* AdmissionControlTest::features_ = nullptr;

TEST_F(AdmissionControlTest, ExpiredRequestsNeverReachInference) {
  obs::MetricsRegistry registry;
  PredictionServer server(ServingConfig(&registry), bn_, features_,
                          model_, &data_->scaler);
  BatchingConfig bcfg;
  bcfg.max_batch_size = 8;
  bcfg.workers = 1;
  bcfg.max_wait_ms = 1.0;
  server.StartBatching(bcfg);

  const auto expired = Clock::now() - std::chrono::milliseconds(1);
  std::vector<std::future<PredictionResponse>> futures;
  for (UserId u = 0; u < 6; ++u) {
    futures.push_back(server.SubmitWithDeadline(u, expired));
  }
  for (auto& f : futures) {
    const PredictionResponse resp = f.get();
    EXPECT_TRUE(resp.shed);
    // request_id 0 marks "no pipeline work ran" — ids are only handed
    // out by HandleBatch.
    EXPECT_EQ(resp.request_id, 0u);
  }
  server.StopBatching();

  EXPECT_EQ(registry.GetCounter("prediction_deadline_shed_total")->value(),
            6u);
  // The shed requests were dropped before sampling/features/inference:
  // nothing ever entered HandleBatch.
  EXPECT_EQ(registry.GetCounter("predict_requests_total")->value(), 0u);
  EXPECT_EQ(server.total_latency().count(), 0u);

  // The synchronous fallback (queue stopped) honors deadlines too.
  auto resp = server.SubmitWithDeadline(0, expired).get();
  EXPECT_TRUE(resp.shed);
  EXPECT_EQ(registry.GetCounter("prediction_deadline_shed_total")->value(),
            7u);
}

TEST_F(AdmissionControlTest, InDeadlineResponsesAreBitIdenticalToHandle) {
  obs::MetricsRegistry registry;
  PredictionServer server(ServingConfig(&registry), bn_, features_,
                          model_, &data_->scaler);
  const std::vector<UserId> uids = {1, 17, 42, 199, 363};
  std::vector<double> direct;
  for (UserId u : uids) {
    direct.push_back(server.Handle(u).fraud_probability);
  }

  BatchingConfig bcfg;
  bcfg.max_batch_size = 4;
  bcfg.workers = 1;
  bcfg.max_wait_ms = 0.2;
  server.StartBatching(bcfg);
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  for (size_t i = 0; i < uids.size(); ++i) {
    // Awaiting each future keeps the batches deterministic; the point
    // is that a generous deadline changes nothing about the response.
    const PredictionResponse resp =
        server.SubmitWithDeadline(uids[i], deadline).get();
    EXPECT_FALSE(resp.shed);
    EXPECT_GT(resp.request_id, 0u);
    EXPECT_DOUBLE_EQ(resp.fraud_probability, direct[i]) << "uid "
                                                        << uids[i];
  }
  server.StopBatching();
  EXPECT_EQ(registry.GetCounter("prediction_deadline_shed_total")->value(),
            0u);
}

TEST_F(AdmissionControlTest, QueueCapRejectsInsteadOfQueueingUnbounded) {
  obs::MetricsRegistry registry;
  PredictionServer server(ServingConfig(&registry), bn_, features_,
                          model_, &data_->scaler);
  BatchingConfig bcfg;
  bcfg.max_batch_size = 64;  // larger than max_queue, so the worker sits
  bcfg.max_wait_ms = 250.0;  // in its coalescing window while we flood
  bcfg.workers = 1;
  bcfg.max_queue = 4;
  server.StartBatching(bcfg);

  const auto deadline = Clock::now() + std::chrono::seconds(30);
  std::vector<std::future<PredictionResponse>> queued;
  for (UserId u = 0; u < 4; ++u) {
    queued.push_back(server.SubmitWithDeadline(u, deadline));
  }
  // Fifth submission finds the queue at its cap: rejected immediately,
  // callback fired with a shed response, nothing queued.
  PredictionResponse rejected;
  EXPECT_FALSE(server.SubmitCallback(
      99, deadline, [&rejected](const PredictionResponse& r) {
        rejected = r;
      }));
  EXPECT_TRUE(rejected.shed);
  EXPECT_EQ(rejected.request_id, 0u);
  EXPECT_EQ(registry.GetCounter("prediction_queue_rejected_total")->value(),
            1u);

  // The admitted four still get real responses.
  for (auto& f : queued) {
    const PredictionResponse resp = f.get();
    EXPECT_FALSE(resp.shed);
    EXPECT_GT(resp.request_id, 0u);
  }
  server.StopBatching();
  EXPECT_EQ(registry.GetCounter("prediction_deadline_shed_total")->value(),
            0u);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("prediction_queue_rejected_total"),
            std::string::npos);
  EXPECT_NE(text.find("prediction_deadline_shed_total"),
            std::string::npos);
  EXPECT_NE(text.find("prediction_queue_depth"), std::string::npos);
}

TEST_F(AdmissionControlTest, OpenLoopLoadGenAccountsForEveryArrival) {
  obs::MetricsRegistry registry;
  PredictionServer server(ServingConfig(&registry), bn_, features_,
                          model_, &data_->scaler);

  LoadGenConfig lcfg;
  lcfg.prediction_rate = 120.0;
  lcfg.ingest_rate = 240.0;
  lcfg.duration_s = 0.4;
  lcfg.slo_ms = 200.0;
  lcfg.seed = 42;
  lcfg.batching.max_batch_size = 4;
  lcfg.batching.workers = 1;
  lcfg.batching.max_wait_ms = 0.5;
  lcfg.batching.max_queue = 256;

  std::vector<UserId> targets;
  for (UserId u = 0; u < 32; ++u) targets.push_back(u);

  OpenLoopLoadGen gen(lcfg, &server, bn_, &registry);
  const LoadGenResult r = gen.Run(targets, data_->dataset.logs);

  // Conservation: every scheduled arrival is served, shed, or rejected.
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.served + r.shed + r.rejected);
  EXPECT_LE(r.in_deadline, r.served);
  EXPECT_GE(r.goodput_frac, 0.0);
  EXPECT_LE(r.goodput_frac, 1.0);
  EXPECT_GT(r.served, 0u);
  EXPECT_LE(r.p50_ms, r.p99_ms);
  EXPECT_LE(r.p99_ms, r.p999_ms);
  EXPECT_LE(r.p999_ms, r.max_ms);
  // Ingest plane: the drain thread applied everything the ring
  // admitted.
  EXPECT_GT(r.ingest_offered, 0u);
  EXPECT_EQ(r.ingest_offered, r.ingest_accepted + r.ingest_rejected);
  EXPECT_EQ(r.ingest_applied, r.ingest_accepted);
  EXPECT_EQ(bn_->ingest_queue_depth(), 0u);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("load_e2e_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("load_ingest_apply_ms"), std::string::npos);
}

}  // namespace
}  // namespace turbo::server
