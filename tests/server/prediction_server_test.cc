// End-to-end serving tests: scenario -> trained HAG -> streaming replay
// of audit requests (each request handled at its user's audit moment,
// like production, so BN edges and burst features are live).
#include "server/prediction_server.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/turbo.h"
#include "metrics/metrics.h"

namespace turbo::server {
namespace {

struct Replay {
  std::vector<UserId> uids;
  std::vector<int> labels;
  std::vector<PredictionResponse> responses;
};

class PredictionServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Offline phase: train a small HAG on a scenario.
    auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(800));
    core::PipelineConfig pcfg;
    pcfg.bn.windows = {kHour, 6 * kHour, kDay};
    data_ = core::PrepareData(std::move(ds), pcfg).release();
    core::HagConfig hcfg;
    hcfg.hidden = {16, 8};
    hcfg.attention_dim = 8;
    hcfg.mlp_hidden = 8;
    model_ = new core::Hag(hcfg);
    gnn::TrainConfig tcfg;
    tcfg.epochs = 25;
    tcfg.lr = 2e-3f;
    core::TrainAndScoreGnn(model_, *data_, bn::SamplerConfig{}, tcfg);

    // Online phase: stand up servers over the same scenario.
    BnServerConfig bcfg;
    bcfg.bn = pcfg.bn;
    bcfg.num_users = 800;
    bn_ = new BnServer(bcfg);
    bn_->IngestBatch(data_->dataset.logs);

    features::FeatureStoreConfig fcfg;
    features_ = new features::FeatureStore(fcfg, &bn_->logs());
    for (UserId u = 0; u < 800; ++u) {
      const float* row = data_->dataset.profile_features.row(u);
      features_->PutProfile(
          u, std::vector<float>(
                 row, row + data_->dataset.profile_features.cols()));
    }
    server_ = new PredictionServer(PredictionConfig{}, bn_, features_,
                                   model_, &data_->scaler);

    // Streaming replay: handle every test user at application + 24h,
    // in audit-time order.
    replay_ = new Replay();
    std::vector<UserId> order = data_->test_uids;
    std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
      return data_->dataset.users[a].application_time <
             data_->dataset.users[b].application_time;
    });
    for (UserId u : order) {
      bn_->AdvanceTo(data_->dataset.users[u].application_time + kDay);
      replay_->uids.push_back(u);
      replay_->labels.push_back(data_->labels[u]);
      replay_->responses.push_back(server_->Handle(u));
    }
  }
  static void TearDownTestSuite() {
    delete replay_;
    delete server_;
    delete features_;
    delete bn_;
    delete model_;
    delete data_;
    server_ = nullptr;
  }

  static core::PreparedData* data_;
  static core::Hag* model_;
  static BnServer* bn_;
  static features::FeatureStore* features_;
  static PredictionServer* server_;
  static Replay* replay_;
};

core::PreparedData* PredictionServerTest::data_ = nullptr;
core::Hag* PredictionServerTest::model_ = nullptr;
BnServer* PredictionServerTest::bn_ = nullptr;
features::FeatureStore* PredictionServerTest::features_ = nullptr;
PredictionServer* PredictionServerTest::server_ = nullptr;
Replay* PredictionServerTest::replay_ = nullptr;

TEST_F(PredictionServerTest, ResponseFieldsPopulated) {
  for (const auto& resp : replay_->responses) {
    ASSERT_GE(resp.fraud_probability, 0.0);
    ASSERT_LE(resp.fraud_probability, 1.0);
    ASSERT_GE(resp.subgraph_nodes, 1);
    ASSERT_GT(resp.total_ms, 0.0);
    ASSERT_NEAR(resp.total_ms,
                resp.sampling_ms + resp.feature_ms + resp.inference_ms,
                1e-9);
  }
}

TEST_F(PredictionServerTest, LatencyHistogramsRecordEveryRequest) {
  EXPECT_EQ(server_->total_latency().count(), replay_->responses.size());
  EXPECT_EQ(server_->sampling_latency().count(),
            replay_->responses.size());
  EXPECT_GT(server_->total_latency().Mean(), 0.0);
}

TEST_F(PredictionServerTest, MetricsRegistryExposesServingPath) {
  const auto& reg = server_->metrics();
  const std::string text = reg.RenderText();
  for (const char* name :
       {"predict_requests_total", "predict_sample_ms",
        "predict_feature_ms", "predict_inference_ms", "predict_total_ms",
        "predict_subgraph_nodes"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"predict_total_ms\""), std::string::npos);
  // Request ids are per-server and monotonic.
  for (size_t i = 0; i < replay_->responses.size(); ++i) {
    EXPECT_EQ(replay_->responses[i].request_id, i + 1);
  }
}

TEST_F(PredictionServerTest, BnServerMetricsTrackIngestAndJobs) {
  const auto& reg = bn_->metrics();
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("bn_ingest_events_total"), std::string::npos);
  EXPECT_NE(text.find("bn_window_jobs_total"), std::string::npos);
  EXPECT_NE(text.find("bn_snapshot_builds_total"), std::string::npos);
}

TEST_F(PredictionServerTest, OnlineScoresRankFraudHigh) {
  std::vector<double> scores;
  for (const auto& r : replay_->responses) {
    scores.push_back(r.fraud_probability);
  }
  const double auc = metrics::RocAuc(scores, replay_->labels);
  EXPECT_GT(auc, 0.8) << "online replay AUC";
}

TEST_F(PredictionServerTest, FraudSubgraphsAreLarger) {
  double fraud_nodes = 0, normal_nodes = 0;
  int nf = 0, nn = 0;
  for (size_t i = 0; i < replay_->responses.size(); ++i) {
    if (replay_->labels[i]) {
      fraud_nodes += replay_->responses[i].subgraph_nodes;
      ++nf;
    } else {
      normal_nodes += replay_->responses[i].subgraph_nodes;
      ++nn;
    }
  }
  ASSERT_GT(nf, 0);
  ASSERT_GT(nn, 0);
  EXPECT_GT(fraud_nodes / nf, normal_nodes / nn);
}

TEST_F(PredictionServerTest, DuplicateUidsInOneBatchGetIdenticalScores) {
  // A batch naming one user several times (client retry racing its
  // original) collapses to a single sampler target; every position must
  // still receive that user's probability — previously this tripped a
  // CHECK in the sampler and, with it removed, would have misaligned the
  // probability-to-slot mapping.
  PredictionConfig cfg;
  cfg.cache_capacity = 0;  // force all positions down the compute path
  PredictionServer fresh(cfg, bn_, features_, model_, &data_->scaler);
  const UserId a = replay_->uids.front();
  const UserId b = replay_->uids.back();
  ASSERT_NE(a, b);
  const auto batch = fresh.HandleBatch({a, b, a, a, b});
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_DOUBLE_EQ(batch[0].fraud_probability, batch[2].fraud_probability);
  EXPECT_DOUBLE_EQ(batch[0].fraud_probability, batch[3].fraud_probability);
  EXPECT_DOUBLE_EQ(batch[1].fraud_probability, batch[4].fraud_probability);
  // Distinct users keep distinct, valid scores — the remap did not smear
  // one row over the whole batch.
  for (const auto& r : batch) {
    EXPECT_GE(r.fraud_probability, 0.0);
    EXPECT_LE(r.fraud_probability, 1.0);
  }
  // A duplicate-heavy batch equals the deduplicated batch position-wise:
  // both sample the same {a, b} union subgraph.
  const auto dedup = fresh.HandleBatch({a, b});
  EXPECT_DOUBLE_EQ(batch[0].fraud_probability, dedup[0].fraud_probability);
  EXPECT_DOUBLE_EQ(batch[1].fraud_probability, dedup[1].fraud_probability);
}

TEST_F(PredictionServerTest, ThresholdControlsBlocking) {
  PredictionConfig strict;
  strict.threshold = 0.0;  // block everyone
  PredictionServer block_all(strict, bn_, features_, model_,
                             &data_->scaler);
  EXPECT_TRUE(block_all.Handle(replay_->uids.back()).blocked);

  PredictionConfig lax;
  lax.threshold = 1.01;  // block no one
  PredictionServer block_none(lax, bn_, features_, model_, &data_->scaler);
  EXPECT_FALSE(block_none.Handle(replay_->uids.back()).blocked);
}

TEST_F(PredictionServerTest, RepeatRequestsBenefitFromFeatureCache) {
  // Compare the modeled storage cost (SimClock), which is deterministic:
  // feature_ms also contains real wall-clock compute, whose noise dwarfs
  // the cache saving on a warm repeat (and flakes under sanitizers).
  UserId u = replay_->uids.back();
  // A fresh hour bucket forces a stat-feature cache miss on the first
  // read; the repeat must be served from the LRU at in-memory cost.
  const SimTime as_of = bn_->now() + kHour;
  storage::SimClock miss_clock;
  storage::SimClock hit_clock;
  ASSERT_FALSE(features_->GetFeatures(u, as_of, &miss_clock).empty());
  ASSERT_FALSE(features_->GetFeatures(u, as_of, &hit_clock).empty());
  EXPECT_LT(hit_clock.ElapsedMicros(), miss_clock.ElapsedMicros());
}

}  // namespace
}  // namespace turbo::server
