// Crash-recovery contract of BnServer (DESIGN.md "Durability &
// recovery"): a server recovered from checkpoint + WAL must be
// bit-identical to one that never crashed — same clock, frontiers, edge
// weight bits, snapshot version — and must stay identical under
// identical future traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "server/bn_server.h"
#include "storage/checkpoint_io.h"
#include "storage/wal.h"

namespace turbo::server {
namespace {

constexpr BehaviorType kIp = BehaviorType::kIpv4;
const int kIpIdx = EdgeTypeIndex(kIp);

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BnServerConfig SmallConfig(const std::string& wal_dir = "") {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = 64;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.wal_dir = wal_dir;
  return cfg;
}

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, kIp, v, t};
}

/// Deterministic mixed-type traffic in [t0, t1).
BehaviorLogList Traffic(SimTime t0, SimTime t1, int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = t0 + (i * 977 * kMinute) % (t1 - t0);
    logs.push_back(L(static_cast<UserId>(i * 13 % 64), 1 + i % 9, t));
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % 64),
                               BehaviorType::kWifiMac, static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

/// Full bit-level equality of the mutable server state: clock, job
/// frontiers (via jobs_run), exact edge-weight double bits, raw-log
/// count, and published snapshot version + CSR contents.
void ExpectIdentical(const BnServer& a, const BnServer& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.edges_expired(), b.edges_expired());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < 64; ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        // Exact double comparison on purpose: recovery replays the
        // deterministic engine, approximate equality would hide drift.
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
  if (a.snapshot_version() != 0 && b.snapshot_version() != 0) {
    auto sa = a.snapshot();
    auto sb = b.snapshot();
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      for (UserId u = 0; u < 64; ++u) {
        bn::NeighborSpan ra = sa->Neighbors(t, u);
        bn::NeighborSpan rb = sb->Neighbors(t, u);
        ASSERT_EQ(ra.size(), rb.size()) << "type " << t << " uid " << u;
        for (size_t i = 0; i < ra.size(); ++i) {
          EXPECT_EQ(ra.id(i), rb.id(i));
          EXPECT_EQ(ra.weight(i), rb.weight(i));
        }
      }
    }
  }
}

TEST(RecoveryTest, CheckpointPlusWalTailIsBitIdentical) {
  const std::string dir = FreshDir("rec_ckpt_wal");
  BnServer reference(SmallConfig());  // never crashes, no WAL
  BnServer writer(SmallConfig(dir));
  // Phase 1: traffic, advance, checkpoint.
  for (const auto& log : Traffic(0, kDay, 120)) {
    reference.Ingest(log);
    writer.Ingest(log);
  }
  reference.AdvanceTo(kDay);
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());
  // Phase 2: more traffic after the checkpoint — the WAL tail.
  for (const auto& log : Traffic(kDay, kDay + 5 * kHour, 60)) {
    reference.Ingest(log);
    writer.Ingest(log);
  }
  reference.AdvanceTo(kDay + 5 * kHour);
  writer.AdvanceTo(kDay + 5 * kHour);  // flushes the WAL
  ASSERT_GT(storage::ListWalSegments(dir).size(), 0u);

  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
  ExpectIdentical(writer, recovered);

  // Determinism must survive recovery: identical future traffic keeps
  // the recovered server identical to the uncrashed one.
  for (const auto& log : Traffic(kDay + 5 * kHour, 2 * kDay, 60)) {
    reference.Ingest(log);
    recovered.Ingest(log);
  }
  reference.AdvanceTo(2 * kDay);
  recovered.AdvanceTo(2 * kDay);
  ExpectIdentical(reference, recovered);
}

TEST(RecoveryTest, WalOnlyRecoverWithoutCheckpoint) {
  const std::string dir = FreshDir("rec_wal_only");
  BnServer reference(SmallConfig());
  {
    BnServer writer(SmallConfig(dir));
    for (const auto& log : Traffic(0, 3 * kHour, 50)) {
      reference.Ingest(log);
      writer.Ingest(log);
    }
    reference.AdvanceTo(3 * kHour);
    writer.AdvanceTo(3 * kHour);
  }
  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
}

TEST(RecoveryTest, CheckpointOnlyRecoverWithWalDisabled) {
  const std::string dir = FreshDir("rec_ckpt_only");
  BnServer writer(SmallConfig());  // WAL disabled
  writer.IngestBatch(Traffic(0, kDay, 80));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());
  BnServer recovered(SmallConfig());
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(writer, recovered);
}

TEST(RecoveryTest, RecoverOnEmptyDirIsAFreshStart) {
  const std::string dir = FreshDir("rec_empty");
  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  EXPECT_EQ(recovered.now(), 0);
  EXPECT_EQ(recovered.jobs_run(), 0u);
  // The server is usable afterwards.
  recovered.Ingest(L(1, 42, 10 * kMinute));
  recovered.Ingest(L(2, 42, 20 * kMinute));
  recovered.AdvanceTo(kHour);
  EXPECT_GT(recovered.edges().Weight(kIpIdx, 1, 2), 0.0f);
}

TEST(RecoveryTest, EmptyWalSegmentRecovers) {
  const std::string dir = FreshDir("rec_empty_wal");
  {
    BnServer writer(SmallConfig(dir));
    writer.AdvanceTo(0);  // opens the WAL, logs a single advance at t=0
  }
  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  EXPECT_EQ(recovered.now(), 0);
  EXPECT_EQ(recovered.jobs_run(), 0u);
}

TEST(RecoveryTest, ReplayAcrossEpochBoundaryAtTimeZero) {
  // Logs at exactly t = 0 sit on the first epoch boundary; replaying
  // them must run the same t=0-inclusive window jobs as the original.
  const std::string dir = FreshDir("rec_t0");
  BnServer reference(SmallConfig());
  BnServer writer(SmallConfig(dir));
  for (UserId u : {0u, 1u, 2u}) {
    reference.Ingest(L(u, 7, 0));
    writer.Ingest(L(u, 7, 0));
  }
  reference.AdvanceTo(0);
  writer.AdvanceTo(0);
  reference.AdvanceTo(kHour);
  writer.AdvanceTo(kHour);
  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
}

TEST(RecoveryTest, TornFinalRecordRecoversTheDurablePrefix) {
  const std::string dir = FreshDir("rec_torn");
  {
    BnServer writer(SmallConfig(dir));
    writer.Ingest(L(1, 42, 10 * kMinute));
    writer.Ingest(L(2, 42, 20 * kMinute));
    writer.AdvanceTo(kHour);
    writer.Ingest(L(3, 99, kHour + kMinute));  // will be torn off
    // Destructor leaves the segment; flush so the tail is in the file.
  }
  // Tear the final record mid-payload, as a crash mid-write would.
  const auto seqs = storage::ListWalSegments(dir);
  ASSERT_EQ(seqs.size(), 1u);
  const std::string path = storage::WalSegmentPath(dir, seqs[0]);
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(storage::WriteFileAtomic(
                  path, std::string_view(bytes.value())
                            .substr(0, bytes.value().size() - 5))
                  .ok());

  BnServer reference(SmallConfig());
  reference.Ingest(L(1, 42, 10 * kMinute));
  reference.Ingest(L(2, 42, 20 * kMinute));
  reference.AdvanceTo(kHour);

  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
  // Post-recovery writes go to a fresh segment, never the torn one.
  recovered.Ingest(L(4, 5, kHour + 2 * kMinute));
  recovered.AdvanceTo(2 * kHour);
  EXPECT_GT(storage::ListWalSegments(dir).back(), seqs[0]);
}

TEST(RecoveryTest, RestartAfterTornTailRecoveryStillRecovers) {
  // Regression: recovering past a torn final segment used to leave the
  // torn file on disk and open a new segment after it; on the next
  // restart the torn segment was no longer the last one, so Recover()
  // refused ("torn tail but is not the last segment") even though the
  // state was fully reconstructible. Recover() now truncates the torn
  // tail, so any number of crash/recover cycles replay cleanly.
  const std::string dir = FreshDir("rec_torn_restart");
  {
    BnServer writer(SmallConfig(dir));
    writer.Ingest(L(1, 42, 10 * kMinute));
    writer.Ingest(L(2, 42, 20 * kMinute));
    writer.AdvanceTo(kHour);
    writer.Ingest(L(3, 99, kHour + kMinute));  // will be torn off
  }
  const auto seqs = storage::ListWalSegments(dir);
  ASSERT_EQ(seqs.size(), 1u);
  const std::string path = storage::WalSegmentPath(dir, seqs[0]);
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(storage::WriteFileAtomic(
                  path, std::string_view(bytes.value())
                            .substr(0, bytes.value().size() - 5))
                  .ok());

  BnServer reference(SmallConfig());
  reference.Ingest(L(1, 42, 10 * kMinute));
  reference.Ingest(L(2, 42, 20 * kMinute));
  reference.AdvanceTo(kHour);
  {
    // First recovery replays the valid prefix and writes to a fresh
    // segment after the (now truncated) torn one.
    BnServer recovered(SmallConfig(dir));
    ASSERT_TRUE(recovered.Recover(dir).ok());
    ExpectIdentical(reference, recovered);
    recovered.Ingest(L(4, 5, kHour + 2 * kMinute));
    recovered.AdvanceTo(2 * kHour);  // flushes the new segment
    reference.Ingest(L(4, 5, kHour + 2 * kMinute));
    reference.AdvanceTo(2 * kHour);
    ASSERT_GT(storage::ListWalSegments(dir).size(), 1u);
  }
  // Second restart: the once-torn segment is now a non-final segment and
  // must replay as a clean one.
  BnServer again(SmallConfig(dir));
  ASSERT_TRUE(again.Recover(dir).ok());
  ExpectIdentical(reference, again);
}

TEST(RecoveryTest, SnapshotNodeCountMismatchIsRejected) {
  // A CRC-valid checkpoint whose snapshot section claims a different
  // node count than the (matching) meta section can only be corruption;
  // it must fail cleanly, not publish a wrong-sized serving graph.
  const std::string dir = FreshDir("rec_snap_nodes");
  BnServer writer(SmallConfig(dir));
  writer.IngestBatch(Traffic(0, kDay, 40));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());

  const std::string path = dir + "/checkpoint.bin";
  auto reader_or = storage::CheckpointReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  storage::CheckpointWriter rewriter;
  for (const char* name :
       {"meta", "server", "edges", "logs", "buckets", "churn"}) {
    storage::BinaryWriter section;
    const std::string_view payload = reader_or.value().Find(name);
    section.Bytes(payload.data(), payload.size());
    rewriter.AddSection(name, section);
  }
  storage::BinaryWriter snap;
  snap.U8(1);
  storage::EdgeStore tiny;
  tiny.AddWeight(0, 1, 2, 1.0f, 0);
  bn::BnSnapshot::Build(tiny, /*num_nodes=*/32, {}, 1)->Serialize(&snap);
  rewriter.AddSection("snapshot", snap);
  ASSERT_TRUE(rewriter.WriteFile(path).ok());

  BnServer recovered(SmallConfig(dir));
  const Status s = recovered.Recover(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, OutOfRangeEdgeEndpointInCheckpointIsRejected) {
  // Same section-swap attack on "edges": an endpoint beyond num_users
  // must be a clean error, not a multi-billion-row adjacency resize.
  const std::string dir = FreshDir("rec_edge_bound");
  BnServer writer(SmallConfig(dir));
  writer.IngestBatch(Traffic(0, kDay, 40));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());

  const std::string path = dir + "/checkpoint.bin";
  auto reader_or = storage::CheckpointReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  storage::CheckpointWriter rewriter;
  for (const char* name :
       {"meta", "server", "logs", "buckets", "snapshot", "churn"}) {
    storage::BinaryWriter section;
    const std::string_view payload = reader_or.value().Find(name);
    section.Bytes(payload.data(), payload.size());
    rewriter.AddSection(name, section);
  }
  storage::BinaryWriter edges;
  edges.U64(1);  // type 0: one edge with a uid far past num_users
  edges.U32(3000000000u);
  edges.U32(1);
  edges.F64(1.0);
  edges.I64(0);
  for (int t = 1; t < kNumEdgeTypes; ++t) edges.U64(0);
  rewriter.AddSection("edges", edges);
  ASSERT_TRUE(rewriter.WriteFile(path).ok());

  BnServer recovered(SmallConfig(dir));
  const Status s = recovered.Recover(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RecoveryTest, ConfigMismatchIsRejected) {
  const std::string dir = FreshDir("rec_cfg");
  BnServer writer(SmallConfig(dir));
  writer.IngestBatch(Traffic(0, kHour, 20));
  writer.AdvanceTo(kHour);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());

  BnServerConfig other = SmallConfig(dir);
  other.bn.windows = {kHour, 2 * kDay};  // different engine schedule
  BnServer recovered(other);
  const Status s = recovered.Recover(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, ShardTopologyMismatchIsRejected) {
  // The shard topology is part of the checkpoint's config fingerprint:
  // state written under one cluster layout must not be recovered into
  // another, which would silently build a skewed graph (each shard's
  // window-job key filter depends on count + seeds).
  const std::string dir = FreshDir("rec_topo");
  BnServerConfig writer_cfg = SmallConfig(dir);
  writer_cfg.bn.topology.shard_count = 2;
  writer_cfg.bn.topology.shard_index = 1;
  BnServer writer(writer_cfg);
  writer.IngestBatch(Traffic(0, kHour, 20));
  writer.AdvanceTo(kHour);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());

  const auto expect_rejected = [&](BnServerConfig cfg) {
    BnServer recovered(std::move(cfg));
    const Status s = recovered.Recover(dir);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  };
  BnServerConfig wrong_count = writer_cfg;
  wrong_count.bn.topology.shard_count = 4;
  expect_rejected(wrong_count);
  BnServerConfig wrong_index = writer_cfg;
  wrong_index.bn.topology.shard_index = 0;
  expect_rejected(wrong_index);
  BnServerConfig wrong_user_seed = writer_cfg;
  wrong_user_seed.bn.topology.user_seed ^= 1;
  expect_rejected(wrong_user_seed);
  BnServerConfig wrong_value_seed = writer_cfg;
  wrong_value_seed.bn.topology.value_seed ^= 1;
  expect_rejected(wrong_value_seed);

  // The matching layout still recovers.
  BnServer recovered(writer_cfg);
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(writer, recovered);
}

TEST(RecoveryTest, CorruptCheckpointIsRejected) {
  const std::string dir = FreshDir("rec_corrupt");
  BnServer writer(SmallConfig(dir));
  writer.IngestBatch(Traffic(0, kHour, 20));
  writer.AdvanceTo(kHour);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());

  const std::string path = dir + "/checkpoint.bin";
  auto bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0x10;
  ASSERT_TRUE(storage::WriteFileAtomic(path, corrupted).ok());

  BnServer recovered(SmallConfig(dir));
  ASSERT_FALSE(recovered.Recover(dir).ok());
}

TEST(RecoveryTest, MissingWalSegmentIsRejected) {
  const std::string dir = FreshDir("rec_gap");
  {
    BnServer writer(SmallConfig(dir));
    writer.IngestBatch(Traffic(0, kHour, 20));
    writer.AdvanceTo(kHour);
    ASSERT_TRUE(writer.Checkpoint(dir).ok());  // rotates to segment 2
    writer.Ingest(L(1, 1, kHour + kMinute));
    writer.AdvanceTo(2 * kHour);
  }
  // Delete the checkpoint: replay must now start at segment 1, but that
  // segment was dropped by the rotation — recovery has to refuse rather
  // than silently skip the missing records.
  std::filesystem::remove(dir + "/checkpoint.bin");
  const auto seqs = storage::ListWalSegments(dir);
  ASSERT_EQ(seqs, (std::vector<uint64_t>{2}));
  BnServer recovered(SmallConfig(dir));
  const Status s = recovered.Recover(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(RecoveryTest, SamplersRunConcurrentlyWithCheckpoint) {
  // Checkpoint is a writer-side operation: lock-free SampleSubgraph
  // readers may keep running while it serializes state (TSan-checked in
  // the sanitizers workflow).
  const std::string dir = FreshDir("rec_conc_ckpt");
  BnServer server(SmallConfig(dir));
  server.IngestBatch(Traffic(0, kDay, 100));
  server.AdvanceTo(kDay);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&server, &stop, i] {
      UserId uid = static_cast<UserId>(i);
      while (!stop.load(std::memory_order_relaxed)) {
        bn::Subgraph sg = server.SampleSubgraph(uid);
        (void)sg;
        uid = (uid + 7) % 64;
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.Checkpoint(dir).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
}

TEST(RecoveryTest, PinnedViewsSurviveRecoveryOfAReplacementServer) {
  // Readers holding views of the crashed incarnation keep serving their
  // pinned snapshot while (and after) a replacement server recovers.
  const std::string dir = FreshDir("rec_conc_recover");
  auto old_server = std::make_unique<BnServer>(SmallConfig(dir));
  old_server->IngestBatch(Traffic(0, kDay, 100));
  old_server->AdvanceTo(kDay);
  bn::GraphView pinned = old_server->view();
  const uint64_t pinned_version = pinned.version();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&pinned, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        size_t degree_sum = 0;
        for (UserId u = 0; u < 64; ++u) {
          degree_sum += pinned.UnionDegree(u);
        }
        (void)degree_sum;
      }
    });
  }
  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  // The old incarnation can even be destroyed: views pin the snapshot.
  old_server.reset();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(pinned.valid());
  EXPECT_EQ(pinned.version(), pinned_version);
  EXPECT_EQ(recovered.snapshot_version(), pinned_version);
}

TEST(RecoveryTest, DeltaChainRecoveryIsBitIdentical) {
  // Full base + two delta checkpoints + WAL tail must recover to the
  // same bits as a server that never crashed — and keep matching it
  // under identical future traffic (so the recovered chain trackers and
  // churn set are right, not just the recovered arrays).
  const std::string dir = FreshDir("rec_delta_chain");
  BnServer reference(SmallConfig());
  BnServer writer(SmallConfig(dir));
  for (const auto& log : Traffic(0, kDay, 200)) {
    reference.Ingest(log);
    writer.Ingest(log);
  }
  reference.AdvanceTo(kDay);
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());  // full base
  ASSERT_TRUE(storage::ListCheckpointDeltas(dir).empty());

  for (int phase = 1; phase <= 2; ++phase) {
    const SimTime t0 = kDay + (phase - 1) * kHour;
    for (const auto& log : Traffic(t0, t0 + kHour, 5)) {
      reference.Ingest(log);
      writer.Ingest(log);
    }
    reference.AdvanceTo(t0 + kHour);
    writer.AdvanceTo(t0 + kHour);
    ASSERT_TRUE(writer.Checkpoint(dir).ok());
    ASSERT_EQ(storage::ListCheckpointDeltas(dir).size(),
              static_cast<size_t>(phase))
        << "small-churn checkpoint " << phase << " should be a delta";
  }
  // The whole point: each link is much smaller than the base.
  const auto base_bytes =
      std::filesystem::file_size(dir + "/checkpoint.bin");
  for (uint64_t seq : storage::ListCheckpointDeltas(dir)) {
    EXPECT_LT(std::filesystem::file_size(
                  storage::CheckpointDeltaPath(dir, seq)),
              base_bytes);
  }
  // WAL tail past the last delta.
  for (const auto& log : Traffic(kDay + 2 * kHour, kDay + 3 * kHour, 7)) {
    reference.Ingest(log);
    writer.Ingest(log);
  }
  reference.AdvanceTo(kDay + 3 * kHour);
  writer.AdvanceTo(kDay + 3 * kHour);

  BnServer recovered(SmallConfig(dir));
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
  ExpectIdentical(writer, recovered);

  // Future traffic: exercises the recovered snapshot churn (incremental
  // publishes off the recovered snapshot) and the recovered chain
  // trackers (the next checkpoint extends the chain).
  for (const auto& log : Traffic(kDay + 3 * kHour, kDay + 4 * kHour, 6)) {
    reference.Ingest(log);
    recovered.Ingest(log);
  }
  reference.AdvanceTo(kDay + 4 * kHour);
  recovered.AdvanceTo(kDay + 4 * kHour);
  ExpectIdentical(reference, recovered);
  const size_t deltas_before = storage::ListCheckpointDeltas(dir).size();
  ASSERT_TRUE(recovered.Checkpoint(dir).ok());
  EXPECT_EQ(storage::ListCheckpointDeltas(dir).size(), deltas_before + 1)
      << "post-recovery checkpoint should extend the delta chain";
}

TEST(RecoveryTest, BrokenDeltaChainIsRejected) {
  // Deleting an intermediate link breaks the parent sequence; recovery
  // must fail loudly instead of silently applying a gapped chain.
  const std::string dir = FreshDir("rec_delta_broken");
  BnServer writer(SmallConfig(dir));
  writer.IngestBatch(Traffic(0, kDay, 200));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());
  for (int phase = 1; phase <= 2; ++phase) {
    const SimTime t0 = kDay + (phase - 1) * kHour;
    writer.IngestBatch(Traffic(t0, t0 + kHour, 5));
    writer.AdvanceTo(t0 + kHour);
    ASSERT_TRUE(writer.Checkpoint(dir).ok());
  }
  std::vector<uint64_t> deltas = storage::ListCheckpointDeltas(dir);
  ASSERT_EQ(deltas.size(), 2u);
  std::filesystem::remove(storage::CheckpointDeltaPath(dir, deltas[0]));

  BnServer recovered(SmallConfig(dir));
  const Status s = recovered.Recover(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("broken delta chain"), std::string::npos)
      << s.ToString();
}

TEST(RecoveryTest, StaleDeltasFromBeforeAFullCheckpointAreSkipped) {
  // Crash window: a full checkpoint is durable but the process dies
  // before deleting the now-superseded delta files. Recovery must skip
  // them (covered_seq at or below the base's) and still match the
  // reference.
  const std::string dir = FreshDir("rec_delta_stale");
  BnServerConfig cfg = SmallConfig(dir);
  cfg.max_delta_chain = 1;  // the checkpoint after one delta goes full
  BnServer reference(SmallConfig());
  BnServer writer(cfg);
  auto feed = [&](SimTime t0, SimTime t1, int n) {
    for (const auto& log : Traffic(t0, t1, n)) {
      reference.Ingest(log);
      writer.Ingest(log);
    }
    reference.AdvanceTo(t1);
    writer.AdvanceTo(t1);
  };
  feed(0, kDay, 200);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());  // full base
  feed(kDay, kDay + kHour, 5);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());  // delta
  std::vector<uint64_t> deltas = storage::ListCheckpointDeltas(dir);
  ASSERT_EQ(deltas.size(), 1u);
  const std::string stale_path =
      storage::CheckpointDeltaPath(dir, deltas[0]);
  auto stale_bytes = storage::ReadFileBytes(stale_path);
  ASSERT_TRUE(stale_bytes.ok());

  feed(kDay + kHour, kDay + 2 * kHour, 5);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());  // chain cap -> full again
  ASSERT_TRUE(storage::ListCheckpointDeltas(dir).empty());
  // Resurrect the superseded delta, as a crash before cleanup would.
  ASSERT_TRUE(
      storage::WriteFileAtomic(stale_path, stale_bytes.value()).ok());

  BnServerConfig rcfg = SmallConfig(dir);
  rcfg.max_delta_chain = 1;
  BnServer recovered(rcfg);
  ASSERT_TRUE(recovered.Recover(dir).ok());
  ExpectIdentical(reference, recovered);
}

TEST(RecoveryTest, DeltaCheckpointsDisabledAlwaysWritesFull) {
  const std::string dir = FreshDir("rec_delta_off");
  BnServerConfig cfg = SmallConfig(dir);
  cfg.delta_checkpoints = false;
  BnServer writer(cfg);
  writer.IngestBatch(Traffic(0, kDay, 100));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());
  writer.IngestBatch(Traffic(kDay, kDay + kHour, 5));
  writer.AdvanceTo(kDay + kHour);
  ASSERT_TRUE(writer.Checkpoint(dir).ok());
  EXPECT_TRUE(storage::ListCheckpointDeltas(dir).empty());
}

}  // namespace
}  // namespace turbo::server
