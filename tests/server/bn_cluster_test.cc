// BnCluster correctness anchors (DESIGN.md §14): a 1-shard cluster is
// bit-identical to a bare BnServer (edges, weights, snapshot CSR,
// prediction outputs), and an N-shard cluster's edge multiset — every
// cross-shard edge built exactly once, weights summed across shards —
// equals the single-shard graph bit for bit. Plus the cluster-lifted
// ingest/advance/checkpoint surface and the serving-side router.
#include "server/bn_cluster.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/turbo.h"
#include "storage/wal.h"

namespace turbo::server {
namespace {

constexpr int kUsers = 64;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BnServerConfig SmallConfig() {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = kUsers;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  return cfg;
}

/// Deterministic mixed-type traffic in [t0, t1): enough value sharing
/// that many co-occurrence edges form, across two edge types.
BehaviorLogList Traffic(SimTime t0, SimTime t1, int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = t0 + (i * 977 * kMinute) % (t1 - t0);
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 13 % kUsers),
                               BehaviorType::kIpv4, static_cast<ValueId>(1 + i % 9), t});
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % kUsers),
                               BehaviorType::kWifiMac, static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

/// Bit-level equality of two bare servers (same helper contract as
/// tests/server/recovery_test.cc).
void ExpectIdentical(const BnServer& a, const BnServer& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.edges_expired(), b.edges_expired());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < kUsers; ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
  if (a.snapshot_version() != 0 && b.snapshot_version() != 0) {
    auto sa = a.snapshot();
    auto sb = b.snapshot();
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      for (UserId u = 0; u < kUsers; ++u) {
        bn::NeighborSpan ra = sa->Neighbors(t, u);
        bn::NeighborSpan rb = sb->Neighbors(t, u);
        ASSERT_EQ(ra.size(), rb.size()) << "type " << t << " uid " << u;
        for (size_t i = 0; i < ra.size(); ++i) {
          EXPECT_EQ(ra.id(i), rb.id(i));
          EXPECT_EQ(ra.weight(i), rb.weight(i));
        }
      }
    }
  }
}

TEST(BnClusterTest, OneShardClusterIsBitIdenticalToBareServer) {
  BnServer bare(SmallConfig());
  BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 1;
  BnCluster cluster(ccfg);

  const BehaviorLogList logs = Traffic(0, 2 * kDay, 200);
  bare.IngestBatch(logs);
  cluster.IngestBatch(logs);
  bare.AdvanceTo(2 * kDay);
  cluster.AdvanceTo(2 * kDay);

  ExpectIdentical(bare, cluster.shard(0));
  EXPECT_EQ(cluster.now(), bare.now());
  EXPECT_EQ(cluster.epoch(), 1u);

  // The sampling surface routes through the only shard.
  for (UserId u = 0; u < kUsers; u += 7) {
    const bn::Subgraph a = bare.SampleSubgraph(u);
    const bn::Subgraph b = cluster.SampleSubgraph(u);
    EXPECT_EQ(a.nodes, b.nodes) << "uid " << u;
    EXPECT_EQ(a.NumEdges(), b.NumEdges()) << "uid " << u;
    EXPECT_EQ(b.snapshot_version, cluster.snapshot_version_for(u));
  }
}

/// The N-shard graph, viewed as a multiset of (type, u, v) -> weight
/// with per-shard contributions summed, must equal the 1-shard graph
/// exactly: same edge set, bit-equal weights, same last-update stamps.
void ExpectSameEdgeMultiset(const BnServer& single, BnCluster& cluster) {
  size_t single_edges = 0;
  std::set<std::tuple<int, UserId, UserId>> cluster_pairs;
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    single_edges += single.edges().NumEdges(t);
    for (int s = 0; s < cluster.num_shards(); ++s) {
      for (UserId u = 0; u < kUsers; ++u) {
        for (const auto& [v, e] : cluster.shard(s).edges().Neighbors(t, u)) {
          cluster_pairs.insert({t, std::min(u, v), std::max(u, v)});
        }
      }
    }
    for (UserId u = 0; u < kUsers; ++u) {
      // Every single-server edge exists in the cluster with the exact
      // same total weight…
      for (const auto& [v, e] : single.edges().Neighbors(t, u)) {
        EXPECT_EQ(cluster.EdgeWeight(t, u, v), e.weight)
            << "type " << t << " edge " << u << "-" << v;
        EXPECT_EQ(cluster.EdgeLastUpdate(t, u, v), e.last_update)
            << "type " << t << " edge " << u << "-" << v;
      }
      // …and no shard holds an edge the single server lacks.
      for (int s = 0; s < cluster.num_shards(); ++s) {
        const auto& single_row = single.edges().Neighbors(t, u);
        for (const auto& [v, e] : cluster.shard(s).edges().Neighbors(t, u)) {
          EXPECT_NE(single_row.find(v), single_row.end())
              << "shard " << s << " type " << t << " phantom edge " << u
              << "-" << v;
        }
      }
    }
  }
  // The distinct (type, u, v) set matches exactly. (The raw per-shard
  // entry counts can exceed it: a pair connected through values owned
  // by different shards keeps one partial-weight entry on each — the
  // per-value build still happens exactly once, which the bit-equal
  // weight sums above pin down.)
  EXPECT_EQ(cluster_pairs.size(), single_edges);
}

TEST(BnClusterTest, ShardedEdgeMultisetEqualsSingleShard) {
  const BehaviorLogList logs = Traffic(0, 3 * kDay, 300);
  BnClusterConfig base;
  base.shard = SmallConfig();
  base.num_shards = 1;
  BnCluster single(base);
  single.IngestBatch(logs);
  single.AdvanceTo(3 * kDay);

  for (int n : {2, 4}) {
    BnClusterConfig ccfg;
    ccfg.shard = SmallConfig();
    ccfg.num_shards = n;
    ccfg.advance_threads = n;  // exercise the parallel barrier too
    BnCluster cluster(ccfg);
    cluster.IngestBatch(logs);
    cluster.AdvanceTo(3 * kDay);
    EXPECT_EQ(cluster.now(), 3 * kDay);
    ExpectSameEdgeMultiset(single.shard(0), cluster);
  }
}

TEST(BnClusterTest, DualDeliveryKeepsHomeShardLogHistoryComplete) {
  obs::MetricsRegistry registry;
  BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 4;
  ccfg.metrics = &registry;
  BnCluster cluster(ccfg);
  const BehaviorLogList logs = Traffic(0, kDay, 150);
  cluster.IngestBatch(logs);

  // Feature reads depend on the home shard holding every log of its
  // users, whatever shard the value routed edge building to.
  std::vector<size_t> expected(4, 0);
  for (const BehaviorLog& log : logs) {
    ++expected[cluster.router().OwnerOfUser(log.uid)];
  }
  for (int s = 0; s < 4; ++s) {
    size_t of_owned_users = 0;
    for (UserId u = 0; u < kUsers; ++u) {
      if (cluster.router().OwnerOfUser(u) != s) continue;
      of_owned_users +=
          cluster.shard(s).logs().QueryUser(u, 0, kDay).size();
    }
    EXPECT_EQ(of_owned_users, expected[s]) << "shard " << s;
  }
  // Forwarding happened (the partition is non-trivial for this traffic).
  EXPECT_GT(registry.GetCounter("bn_cluster_forwarded_total")->value(), 0u);
}

TEST(BnClusterTest, OfferDrainMatchesDirectIngest) {
  BnClusterConfig direct_cfg;
  direct_cfg.shard = SmallConfig();
  direct_cfg.num_shards = 2;
  BnCluster direct(direct_cfg);

  BnClusterConfig queued_cfg = direct_cfg;
  queued_cfg.shard.ingest_queue_capacity = 4096;
  BnCluster queued(queued_cfg);

  const BehaviorLogList logs = Traffic(0, kDay, 100);
  direct.IngestBatch(logs);
  for (const BehaviorLog& log : logs) {
    ASSERT_TRUE(queued.OfferIngest(log));
  }
  EXPECT_GT(queued.ingest_queue_depth(), 0u);
  queued.DrainIngest();
  EXPECT_EQ(queued.ingest_queue_depth(), 0u);
  direct.AdvanceTo(kDay);
  queued.AdvanceTo(kDay);
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(direct.shard(s), queued.shard(s));
  }
}

TEST(BnClusterTest, ClusterCheckpointRecoverRoundTrip) {
  const std::string root = FreshDir("cluster_ckpt");
  BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 2;
  ccfg.wal_root = root;
  BnCluster writer(ccfg);
  writer.IngestBatch(Traffic(0, kDay, 120));
  writer.AdvanceTo(kDay);
  ASSERT_TRUE(writer.Checkpoint().ok());
  // WAL tail past the checkpoint.
  writer.IngestBatch(Traffic(kDay, kDay + 5 * kHour, 60));
  writer.AdvanceTo(kDay + 5 * kHour);

  BnCluster recovered(ccfg);
  ASSERT_TRUE(recovered.Recover().ok());
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(writer.shard(s), recovered.shard(s));
  }

  // A cluster with a different layout must refuse this state: the shard
  // topology is part of each shard's checkpoint fingerprint.
  BnClusterConfig wrong = ccfg;
  wrong.num_shards = 4;
  BnCluster mismatched(wrong);
  const Status s = mismatched.Recover();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(BnClusterTest, MetricsExposeRoutingAndPerShardLag) {
  BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 2;
  BnCluster cluster(ccfg);
  cluster.IngestBatch(Traffic(0, kDay, 80));
  cluster.AdvanceTo(kDay);

  const std::string text = cluster.metrics().RenderText();
  for (const char* name :
       {"bn_cluster_ingest_events_total", "bn_cluster_forwarded_total",
        "bn_cluster_epoch", "bn_cluster_shard0_snapshot_version",
        "bn_cluster_shard1_snapshot_version", "bn_cluster_shard0_edges",
        "bn_cluster_shard1_edges"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(ClusterPredictionTest, CacheKeySeparatesShardsAndKeepsLegacyForm) {
  const UserId uid = 42;
  const uint64_t version = 7;
  // Tag 0 is the pre-cluster key, byte for byte.
  EXPECT_EQ(PredictionServer::CacheKey(0, uid, version),
            (version << 32) | uid);
  // Distinct shard tags give the same (uid, version) distinct keys.
  std::set<uint64_t> keys;
  for (uint32_t tag = 0; tag < 8; ++tag) {
    keys.insert(PredictionServer::CacheKey(tag, uid, version));
  }
  EXPECT_EQ(keys.size(), 8u);
}

// End-to-end prediction bit-identity: the same trained model served
// over a bare BnServer and over a 1-shard cluster must return the same
// probability bits. (For N > 1 the serving graph is partitioned by
// design, so only the 1-shard case is a bit-identity anchor.)
TEST(ClusterPredictionTest, OneShardClusterServingIsBitIdentical) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(300));
  core::PipelineConfig pcfg;
  pcfg.bn.windows = {kHour, kDay};
  auto data = core::PrepareData(std::move(ds), pcfg);
  core::HagConfig hcfg;
  hcfg.hidden = {16, 8};
  hcfg.attention_dim = 8;
  hcfg.mlp_hidden = 8;
  // Deterministic seeded init, no training: bit-identity only needs the
  // same weights on both sides.
  core::Hag model(hcfg);
  model.Init(static_cast<int>(data->features.cols()));

  BnServerConfig bcfg;
  bcfg.bn = pcfg.bn;
  bcfg.num_users = 300;
  BnServer bare(bcfg);
  BnClusterConfig ccfg;
  ccfg.shard = bcfg;
  ccfg.num_shards = 1;
  BnCluster cluster(ccfg);
  bare.IngestBatch(data->dataset.logs);
  cluster.IngestBatch(data->dataset.logs);
  const SimTime horizon = data->dataset.logs.back().time + kDay;
  bare.AdvanceTo(horizon);
  cluster.AdvanceTo(horizon);

  features::FeatureStoreConfig fcfg;
  features::FeatureStore bare_features(fcfg, &bare.logs());
  features::FeatureStore shard_features(fcfg, &cluster.shard(0).logs());
  for (UserId u = 0; u < 300; ++u) {
    const float* row = data->dataset.profile_features.row(u);
    std::vector<float> profile(
        row, row + data->dataset.profile_features.cols());
    bare_features.PutProfile(u, profile);
    shard_features.PutProfile(u, profile);
  }

  PredictionServer bare_server(PredictionConfig{}, &bare, &bare_features,
                               &model, &data->scaler);
  PredictionConfig shard_cfg;
  shard_cfg.shard_tag = 1;  // cluster serving tags its cache keys
  PredictionServer shard_server(shard_cfg, &cluster.shard(0),
                                &shard_features, &model, &data->scaler);
  ClusterPredictionRouter router(&cluster.router(), {&shard_server});

  std::vector<UserId> uids(data->test_uids.begin(),
                           data->test_uids.begin() +
                               std::min<size_t>(24, data->test_uids.size()));
  const std::vector<PredictionResponse> via_cluster =
      router.HandleBatch(uids);
  const std::vector<PredictionResponse> via_bare =
      bare_server.HandleBatch(uids);
  ASSERT_EQ(via_cluster.size(), via_bare.size());
  for (size_t i = 0; i < uids.size(); ++i) {
    EXPECT_EQ(via_cluster[i].fraud_probability,
              via_bare[i].fraud_probability)
        << "uid " << uids[i];
    EXPECT_EQ(via_cluster[i].blocked, via_bare[i].blocked);
    EXPECT_EQ(via_cluster[i].subgraph_nodes, via_bare[i].subgraph_nodes);
  }
  // Single requests route to the same shard server and reuse its cache.
  const PredictionResponse single = router.Handle(uids.front());
  EXPECT_EQ(single.fraud_probability,
            via_cluster.front().fraud_probability);
}

TEST(ClusterPredictionTest, RouterScattersBatchAcrossOwners) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(300));
  core::PipelineConfig pcfg;
  pcfg.bn.windows = {kHour, kDay};
  auto data = core::PrepareData(std::move(ds), pcfg);
  core::HagConfig hcfg;
  hcfg.hidden = {16, 8};
  hcfg.attention_dim = 8;
  hcfg.mlp_hidden = 8;
  core::Hag model(hcfg);
  model.Init(static_cast<int>(data->features.cols()));

  BnServerConfig bcfg;
  bcfg.bn = pcfg.bn;
  bcfg.num_users = 300;
  BnClusterConfig ccfg;
  ccfg.shard = bcfg;
  ccfg.num_shards = 2;
  BnCluster cluster(ccfg);
  cluster.IngestBatch(data->dataset.logs);
  cluster.AdvanceTo(data->dataset.logs.back().time + kDay);

  features::FeatureStoreConfig fcfg;
  std::vector<std::unique_ptr<features::FeatureStore>> stores;
  std::vector<std::unique_ptr<PredictionServer>> servers;
  std::vector<PredictionServer*> raw;
  for (int s = 0; s < 2; ++s) {
    stores.push_back(std::make_unique<features::FeatureStore>(
        fcfg, &cluster.shard(s).logs()));
    for (UserId u = 0; u < 300; ++u) {
      const float* row = data->dataset.profile_features.row(u);
      stores.back()->PutProfile(
          u, std::vector<float>(
                 row, row + data->dataset.profile_features.cols()));
    }
    PredictionConfig scfg;
    scfg.shard_tag = static_cast<uint32_t>(s + 1);
    servers.push_back(std::make_unique<PredictionServer>(
        scfg, &cluster.shard(s), stores.back().get(), &model,
        &data->scaler));
    raw.push_back(servers.back().get());
  }
  ClusterPredictionRouter router(&cluster.router(), raw);

  std::vector<UserId> uids(data->test_uids.begin(),
                           data->test_uids.begin() +
                               std::min<size_t>(16, data->test_uids.size()));
  const auto batch = router.HandleBatch(uids);
  ASSERT_EQ(batch.size(), uids.size());
  bool used[2] = {false, false};
  for (size_t i = 0; i < uids.size(); ++i) {
    const int owner = cluster.router().OwnerOfUser(uids[i]);
    used[owner] = true;
    // Each slot's answer equals the owner shard's own answer (cache hit
    // on the second call — same pinned snapshot, same key space).
    const PredictionResponse direct = raw[owner]->Handle(uids[i]);
    EXPECT_EQ(batch[i].fraud_probability, direct.fraud_probability)
        << "uid " << uids[i];
  }
  EXPECT_TRUE(used[0] && used[1]) << "test traffic never crossed shards";
}

}  // namespace
}  // namespace turbo::server
