#include "server/scorecard.h"

#include <gtest/gtest.h>

namespace turbo::server {
namespace {

TEST(ScorecardTest, RiskyFraudstersScoreHigherThanNormals) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1500));
  Scorecard card;
  double normal = 0, risky = 0, stealth = 0;
  int nn = 0, nr = 0, ns = 0;
  for (const auto& u : ds.users) {
    const double s = card.Score(ds.profile_features, u.uid);
    if (!u.is_fraud) {
      normal += s;
      ++nn;
    } else if (u.stealth) {
      stealth += s;
      ++ns;
    } else {
      risky += s;
      ++nr;
    }
  }
  ASSERT_GT(nr, 0);
  ASSERT_GT(ns, 0);
  EXPECT_GT(risky / nr, normal / nn + 1.5);
  // Stealth fraudsters sail through the legacy rules — the gap Turbo
  // exists to close.
  EXPECT_LT(stealth / ns, normal / nn + 1.0);
}

TEST(ScorecardTest, BlockThresholdSplitsPopulation) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(1500));
  Scorecard card;
  int blocked = 0;
  int blocked_risky = 0, total_risky = 0;
  for (const auto& u : ds.users) {
    const bool b = card.Blocks(ds.profile_features, u.uid);
    blocked += b;
    if (u.is_fraud && !u.stealth) {
      ++total_risky;
      blocked_risky += b;
    }
  }
  // Blocks only a small fraction of all applications, but a much larger
  // share of the visibly risky fraudsters. (The legacy scorecard being
  // mediocre is the paper's premise — it is why Turbo exists.)
  EXPECT_LT(blocked, 1500 * 0.25);
  ASSERT_GT(total_risky, 0);
  EXPECT_GT(static_cast<double>(blocked_risky) / total_risky, 0.35);
}

TEST(ScorecardTest, ScoreIsDeterministic) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(300));
  Scorecard card;
  for (UserId u = 0; u < 50; ++u) {
    EXPECT_DOUBLE_EQ(card.Score(ds.profile_features, u),
                     card.Score(ds.profile_features, u));
  }
}

TEST(ScorecardDeathTest, UidOutOfRangeAborts) {
  la::Matrix x(2, datagen::kNumProfileFeatures);
  Scorecard card;
  EXPECT_DEATH(card.Score(x, 2), "CHECK failed");
}

}  // namespace
}  // namespace turbo::server
