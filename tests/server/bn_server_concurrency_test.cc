// Concurrency contract of the BN server's snapshot read path: any number
// of sampler threads read the last published snapshot lock-free while the
// writer runs window jobs, TTL expiry, and snapshot builds. These tests
// are meant to run under -fsanitize=thread (see the sanitizers CI
// workflow and .tsan-suppressions for a libstdc++-12 false positive):
// a torn publish or a reader touching writer state would be
// reported as a data race there, while the assertions below check the
// versioned-consistency contract — every sampled subgraph matches the
// graph content of the exact snapshot version it reports.
#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/bn_server.h"

namespace turbo::server {
namespace {

constexpr BehaviorType kIp = BehaviorType::kIpv4;

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, kIp, v, t};
}

// Writer grows a star around user 0 by one leaf per snapshot version;
// readers continuously sample user 0's computation subgraph and check it
// against the expected graph of the version it was sampled from.
TEST(BnServerConcurrencyTest, ReadersSampleConsistentlyWhileWriterAdvances) {
  constexpr int kSteps = 40;    // published snapshot versions
  constexpr int kReaders = 4;
  BnServerConfig cfg;
  cfg.bn.windows = {kHour};
  cfg.num_users = kSteps + 2;
  cfg.snapshot_refresh = kHour;
  cfg.sampler.num_hops = 2;
  cfg.sampler.fanout = kSteps + 2;  // never truncate the star
  BnServer server(cfg);

  // expected_nodes[v] = subgraph size of user 0 under snapshot version v;
  // written by the writer strictly before version v is published, so any
  // reader that observes v also observes its expectation.
  std::array<std::atomic<size_t>, kSteps + 1> expected_nodes{};

  // Version 1: empty graph (no window job has seen any logs yet).
  expected_nodes[1].store(1);
  server.AdvanceTo(1);  // publishes version 1 at t=1

  std::atomic<bool> stop{false};
  std::atomic<size_t> samples_taken{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&server, &expected_nodes, &stop, &samples_taken] {
      while (!stop.load(std::memory_order_acquire)) {
        bn::Subgraph sg = server.SampleSubgraph(0);
        const uint64_t v = sg.snapshot_version;
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, static_cast<uint64_t>(kSteps));
        // Content matches the version's expected star graph.
        EXPECT_EQ(sg.nodes.size(), expected_nodes[v].load());
        EXPECT_EQ(sg.NumEdges(), sg.nodes.size() - 1);  // star
        // Structural invariants: targets first, local map is the exact
        // inverse of the node list, edge endpoints in range.
        EXPECT_EQ(sg.nodes[0], 0u);
        EXPECT_EQ(sg.num_targets, 1u);
        ASSERT_EQ(sg.local.size(), sg.nodes.size());
        for (size_t i = 0; i < sg.nodes.size(); ++i) {
          auto it = sg.local.find(sg.nodes[i]);
          ASSERT_NE(it, sg.local.end());
          EXPECT_EQ(it->second, static_cast<int>(i));
        }
        for (int t = 0; t < kNumEdgeTypes; ++t) {
          for (const auto& e : sg.edges[t]) {
            ASSERT_LT(e.row, sg.nodes.size());
            ASSERT_LT(e.col, sg.nodes.size());
          }
        }
        samples_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: each step ingests one new co-occurrence (user 0 with a fresh
  // leaf) inside the next hourly epoch, then advances past that epoch so
  // the window job builds the edge and the refresh publishes version
  // step. Ingestion, TTL, and the snapshot build all run concurrently
  // with the samplers above.
  for (int step = 2; step <= kSteps; ++step) {
    const SimTime epoch_start = (step - 1) * kHour;
    const UserId leaf = static_cast<UserId>(step - 1);
    server.Ingest(L(0, 100 + step, epoch_start + 10 * kMinute));
    server.Ingest(L(leaf, 100 + step, epoch_start + 20 * kMinute));
    expected_nodes[step].store(static_cast<size_t>(step));
    server.AdvanceTo(step * kHour);
    ASSERT_EQ(server.snapshot_version(), static_cast<uint64_t>(step));
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(samples_taken.load(), 0u);
}

// Sharded window jobs run on a worker pool inside AdvanceTo while
// sampler threads read published snapshots: the shard workers touch the
// LogStore's lazily-sorted indexes and private delta buffers, and none
// of that may race with the lock-free read path. Run under
// -fsanitize=thread this is the ingest-vs-sample race check for the
// parallel engine; the assertions double as a determinism check against
// a serially-built reference.
TEST(BnServerConcurrencyTest, SampleWhileShardedJobsRun) {
  constexpr int kReaders = 4;
  constexpr int kUsers = 64;
  BnServerConfig cfg;
  cfg.bn.windows = {kHour, 2 * kHour};
  cfg.bn.window_job_shards = 8;
  cfg.window_job_threads = 4;  // pooled shard workers
  cfg.num_users = kUsers;
  cfg.snapshot_refresh = kHour;
  BnServer server(cfg);
  server.AdvanceTo(1);  // publish an (empty) snapshot for the readers

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&server, &stop, r] {
      while (!stop.load(std::memory_order_acquire)) {
        bn::Subgraph sg =
            server.SampleSubgraph(static_cast<UserId>(r % kUsers));
        ASSERT_GE(sg.snapshot_version, 1u);
        ASSERT_GE(sg.nodes.size(), 1u);
      }
    });
  }

  // Writer: dense co-occurring traffic so every hourly job has work for
  // several shards, advanced hour by hour while the readers sample.
  BehaviorLogList all_logs;
  for (int hour = 0; hour < 24; ++hour) {
    BehaviorLogList logs;
    for (int i = 0; i < 120; ++i) {
      logs.push_back(L(static_cast<UserId>((hour * 7 + i) % kUsers),
                       1 + i % 13, hour * kHour + 1 + i * 20));
    }
    server.IngestBatch(logs);
    all_logs.insert(all_logs.end(), logs.begin(), logs.end());
    server.AdvanceTo((hour + 1) * kHour);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // The pooled run equals an offline serial build over the same logs.
  storage::EdgeStore reference;
  bn::BnConfig serial_cfg = cfg.bn;
  serial_cfg.window_job_shards = 1;
  bn::BnBuilder(serial_cfg, &reference).BuildFromLogs(all_logs);
  const int type = EdgeTypeIndex(kIp);
  for (UserId u = 0; u < kUsers; ++u) {
    const auto& got = server.edges().Neighbors(type, u);
    const auto& want = reference.Neighbors(type, u);
    ASSERT_EQ(got.size(), want.size()) << "u=" << u;
    for (const auto& [v, e] : want) {
      auto it = got.find(v);
      ASSERT_NE(it, got.end()) << "edge " << u << "-" << v;
      ASSERT_EQ(it->second.weight, e.weight) << "edge " << u << "-" << v;
    }
  }
}

// A reader-held view pins its snapshot version: publishing newer versions
// must neither change nor invalidate what the old view serves (RCU-style
// reclamation — the snapshot dies with its last reference, not at
// publish time).
TEST(BnServerConcurrencyTest, HeldViewPinsItsSnapshotAcrossPublishes) {
  BnServerConfig cfg;
  cfg.bn.windows = {kHour};
  cfg.num_users = 16;
  cfg.snapshot_refresh = kHour;
  BnServer server(cfg);
  server.Ingest(L(1, 42, 10 * kMinute));
  server.Ingest(L(2, 42, 20 * kMinute));
  server.AdvanceTo(kHour);

  bn::GraphView pinned = server.view();
  const uint64_t pinned_version = pinned.version();
  const size_t pinned_edges = pinned.TotalEdges();
  EXPECT_EQ(pinned_version, 1u);

  // Publish several newer versions with more edges.
  for (int step = 2; step <= 5; ++step) {
    const SimTime epoch_start = (step - 1) * kHour;
    server.Ingest(L(3, 100 + step, epoch_start + 10 * kMinute));
    server.Ingest(L(static_cast<UserId>(step + 3), 100 + step,
                    epoch_start + 20 * kMinute));
    server.AdvanceTo(step * kHour);
  }
  EXPECT_EQ(server.snapshot_version(), 5u);
  EXPECT_GT(server.view().TotalEdges(), pinned_edges);

  // The pinned view still serves the old version's content.
  EXPECT_EQ(pinned.version(), pinned_version);
  EXPECT_EQ(pinned.TotalEdges(), pinned_edges);
  bn::SubgraphSampler sampler(pinned, cfg.sampler);
  auto sg = sampler.SampleOne(1);
  EXPECT_EQ(sg.snapshot_version, pinned_version);
  EXPECT_EQ(sg.nodes.size(), 2u);
}

}  // namespace
}  // namespace turbo::server
