// Property sweeps over the metric implementations.
#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "util/rng.h"

namespace turbo::metrics {
namespace {

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    const int n = 500;
    scores_.resize(n);
    labels_.resize(n);
    for (int i = 0; i < n; ++i) {
      labels_[i] = rng.NextBool(0.2);
      scores_[i] = rng.NextDouble() * 0.6 + 0.3 * labels_[i];
    }
  }
  std::vector<double> scores_;
  std::vector<int> labels_;
};

TEST_P(MetricsPropertyTest, ConfusionCountsSumToN) {
  for (double thr : {0.0, 0.3, 0.5, 0.9, 1.1}) {
    auto c = Confuse(scores_, labels_, thr);
    ASSERT_EQ(c.tp + c.fp + c.tn + c.fn,
              static_cast<int64_t>(scores_.size()));
  }
}

TEST_P(MetricsPropertyTest, RecallMonotoneInThreshold) {
  double prev = 1.1;
  for (double thr : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double r = Confuse(scores_, labels_, thr).Recall();
    ASSERT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST_P(MetricsPropertyTest, FBetaBetweenZeroAndOne) {
  auto c = Confuse(scores_, labels_, 0.5);
  for (double beta : {0.5, 1.0, 2.0, 4.0}) {
    const double f = c.FBeta(beta);
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
    // F-beta lies between min and max of precision and recall.
    ASSERT_GE(f, std::min(c.Precision(), c.Recall()) - 1e-12);
    ASSERT_LE(f, std::max(c.Precision(), c.Recall()) + 1e-12);
  }
}

TEST_P(MetricsPropertyTest, AucComplementsOnLabelFlip) {
  std::vector<int> flipped(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) flipped[i] = 1 - labels_[i];
  ASSERT_NEAR(RocAuc(scores_, labels_) + RocAuc(scores_, flipped), 1.0,
              1e-9);
}

TEST_P(MetricsPropertyTest, AucInvariantUnderPermutation) {
  const double base = RocAuc(scores_, labels_);
  Rng rng(GetParam() + 99);
  std::vector<size_t> perm(scores_.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::vector<double> s2(scores_.size());
  std::vector<int> y2(labels_.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    s2[i] = scores_[perm[i]];
    y2[i] = labels_[perm[i]];
  }
  ASSERT_NEAR(RocAuc(s2, y2), base, 1e-12);
}

TEST_P(MetricsPropertyTest, AggregateVarianceNonNegative) {
  auto mv = Aggregate(scores_);
  ASSERT_GE(mv.variance, 0.0);
  // Shifting values shifts the mean but not the variance.
  std::vector<double> shifted = scores_;
  for (double& v : shifted) v += 42.0;
  auto mv2 = Aggregate(shifted);
  ASSERT_NEAR(mv2.mean, mv.mean + 42.0, 1e-9);
  ASSERT_NEAR(mv2.variance, mv.variance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace turbo::metrics
