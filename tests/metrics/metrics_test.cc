#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace turbo::metrics {
namespace {

TEST(ConfusionTest, BasicCounts) {
  // scores:  .9 .8 .4 .3 ; labels: 1 0 1 0 ; threshold .5
  auto c = Confuse({0.9, 0.8, 0.4, 0.3}, {1, 0, 1, 0});
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.5);
}

TEST(ConfusionTest, ThresholdIsInclusive) {
  auto c = Confuse({0.5}, {1}, 0.5);
  EXPECT_EQ(c.tp, 1);
}

TEST(ConfusionTest, DegenerateCasesReturnZero) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
}

TEST(FBetaTest, F1IsHarmonicMean) {
  Confusion c{/*tp=*/8, /*fp=*/2, /*tn=*/0, /*fn=*/8};
  // P = 0.8, R = 0.5 -> F1 = 2*0.8*0.5/1.3
  EXPECT_NEAR(c.F1(), 2 * 0.8 * 0.5 / 1.3, 1e-9);
}

TEST(FBetaTest, F2WeighsRecallTwice) {
  // High precision, low recall: F2 < F1. High recall, low precision:
  // F2 > F1 — this is why Table III reports both.
  Confusion high_p{9, 1, 0, 91};   // P=0.9, R=0.09
  EXPECT_LT(high_p.F2(), high_p.F1());
  Confusion high_r{90, 110, 0, 10};  // P=0.45, R=0.9
  EXPECT_GT(high_r.F2(), high_r.F1());
}

TEST(AucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(1);
  std::vector<double> scores(4000);
  std::vector<int> labels(4000);
  for (int i = 0; i < 4000; ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBool(0.3);
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.03);
}

TEST(AucTest, TiesGetHalfCredit) {
  // All scores equal: AUC must be exactly 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0.7, 0.7, 0.7, 0.7}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  std::vector<double> s1 = {0.1, 0.4, 0.35, 0.8, 0.65};
  std::vector<double> s2;
  for (double v : s1) s2.push_back(v * 100.0 - 3.0);
  std::vector<int> y = {0, 0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(s1, y), RocAuc(s2, y));
}

TEST(AucTest, KnownHandComputedValue) {
  // pos scores {0.8, 0.4}, neg {0.6, 0.2}:
  // pairs: (.8>.6)+( .8>.2)+(.4<.6=0)+(.4>.2) = 3/4
  EXPECT_DOUBLE_EQ(RocAuc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(EvaluateTest, ReturnsPercentages) {
  auto r = Evaluate({0.9, 0.1}, {1, 0});
  EXPECT_DOUBLE_EQ(r.precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.recall_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.auc_pct, 100.0);
}

TEST(AggregateTest, MeanAndVariance) {
  auto mv = Aggregate({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(mv.mean, 4.0);
  EXPECT_NEAR(mv.variance, 8.0 / 3.0, 1e-12);
}

TEST(AggregateTest, SingleValueHasZeroVariance) {
  auto mv = Aggregate({3.14});
  EXPECT_DOUBLE_EQ(mv.mean, 3.14);
  EXPECT_DOUBLE_EQ(mv.variance, 0.0);
}

}  // namespace
}  // namespace turbo::metrics
