// RPC layer conformance (DESIGN.md §15): request/response round trips
// over real loopback sockets, remote Status propagation, read
// deadlines, reconnect-with-backoff after connection kills, and the
// corruption contract — a torn or garbage frame drops the peer, never
// crashes the server or misdelivers a payload.
#include "net/rpc.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace turbo::net {
namespace {

RpcHandler EchoHandler() {
  return [](uint8_t method, std::string_view body) -> Result<std::string> {
    if (method == 99) {
      return Status::InvalidArgument("method 99 always fails");
    }
    return std::string(body);
  };
}

std::unique_ptr<RpcServer> StartEchoServer(obs::MetricsRegistry* metrics,
                                           RpcHandler handler = {}) {
  RpcServerConfig cfg;
  cfg.endpoint.port = 0;  // ephemeral
  cfg.metrics = metrics;
  auto server_or =
      RpcServer::Start(cfg, handler ? std::move(handler) : EchoHandler());
  EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
  return server_or.take();
}

RpcClientConfig ClientConfig(const RpcServer& server,
                             obs::MetricsRegistry* metrics = nullptr) {
  RpcClientConfig cfg;
  cfg.endpoint = server.endpoint();
  cfg.metrics = metrics;
  cfg.backoff_initial_ms = 1;
  cfg.backoff_max_ms = 10;
  return cfg;
}

TEST(NetRpcTest, RoundTripEchoesBodiesAndCountsTraffic) {
  obs::MetricsRegistry server_metrics;
  obs::MetricsRegistry client_metrics;
  auto server = StartEchoServer(&server_metrics);
  RpcClient client(ClientConfig(*server, &client_metrics));

  for (int i = 0; i < 10; ++i) {
    const std::string body = "payload-" + std::to_string(i);
    auto result = client.Call(static_cast<uint8_t>(i + 1), body);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value(), body);
  }
  EXPECT_EQ(server_metrics.GetCounter("net_server_requests_total")->value(),
            10u);
  EXPECT_GT(client_metrics.GetCounter("net_bytes_sent_total")->value(), 0u);
  EXPECT_GT(client_metrics.GetCounter("net_bytes_received_total")->value(),
            0u);
  const std::string text = client_metrics.RenderText();
  EXPECT_NE(text.find("net_rpc_latency_ms"), std::string::npos);
}

TEST(NetRpcTest, LargePayloadRoundTrip) {
  obs::MetricsRegistry metrics;
  auto server = StartEchoServer(&metrics);
  RpcClient client(ClientConfig(*server));
  std::string body(3 * 1024 * 1024, '\0');
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>(i * 31);
  }
  auto result = client.Call(1, body);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), body);
}

TEST(NetRpcTest, RemoteErrorStatusTravelsBack) {
  obs::MetricsRegistry metrics;
  auto server = StartEchoServer(&metrics);
  RpcClient client(ClientConfig(*server));
  auto result = client.Call(99, "whatever");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "method 99 always fails");
  // A definite remote error is never retried into a different answer;
  // the connection survives for the next call.
  auto ok = client.Call(1, "still alive");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "still alive");
}

TEST(NetRpcTest, ConnectionKillReconnectsIdempotentCalls) {
  obs::MetricsRegistry client_metrics;
  auto server = StartEchoServer(nullptr);
  RpcClient client(ClientConfig(*server, &client_metrics));
  ASSERT_TRUE(client.Call(1, "warm").ok());

  for (int round = 0; round < 3; ++round) {
    server->CloseConnections();
    auto result = client.Call(1, "after-kill", /*idempotent=*/true);
    ASSERT_TRUE(result.ok()) << "round " << round << ": "
                             << result.status().ToString();
    EXPECT_EQ(result.value(), "after-kill");
  }
  EXPECT_GE(client_metrics.GetCounter("net_reconnects_total")->value(), 3u);
}

TEST(NetRpcTest, ClientSideDropReconnectsTransparently) {
  auto server = StartEchoServer(nullptr);
  RpcClient client(ClientConfig(*server));
  ASSERT_TRUE(client.Call(1, "a").ok());
  client.DebugDropConnection();
  EXPECT_FALSE(client.connected());
  // Even a non-idempotent call is safe: the request provably never went
  // out on the dropped connection, so the retry loop reconnects.
  auto result = client.Call(1, "b");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "b");
}

TEST(NetRpcTest, DeadServerFailsUnavailableAfterBoundedRetries) {
  Endpoint dead;
  {
    auto server = StartEchoServer(nullptr);
    dead = server->endpoint();
    server->Stop();
  }
  obs::MetricsRegistry metrics;
  RpcClientConfig cfg;
  cfg.endpoint = dead;
  cfg.metrics = &metrics;
  cfg.connect_deadline_ms = 200;
  cfg.max_retries = 2;
  cfg.backoff_initial_ms = 1;
  cfg.backoff_max_ms = 5;
  RpcClient client(cfg);
  auto result = client.Call(1, "anyone home");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable())
      << result.status().ToString();
  EXPECT_GE(metrics.GetCounter("net_rpc_errors_total")->value(), 1u);
}

TEST(NetRpcTest, ReadDeadlineExpiresAsUnavailable) {
  auto server = StartEchoServer(
      nullptr, [](uint8_t, std::string_view body) -> Result<std::string> {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        return std::string(body);
      });
  RpcClientConfig cfg = ClientConfig(*server);
  cfg.read_deadline_ms = 50;
  cfg.max_retries = 0;
  RpcClient client(cfg);
  auto result = client.Call(1, "slow");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable())
      << result.status().ToString();
}

TEST(NetRpcTest, GarbageBytesDropThePeerCleanly) {
  obs::MetricsRegistry server_metrics;
  auto server = StartEchoServer(&server_metrics);

  auto conn_or = TcpConn::Connect(server->endpoint(), 1000);
  ASSERT_TRUE(conn_or.ok()) << conn_or.status().ToString();
  auto conn = conn_or.take();
  const std::string garbage(64, '\xee');
  ASSERT_TRUE(conn->WriteAll(garbage.data(), garbage.size(), 1000).ok());
  // The server must detect the framing corruption and close; the read
  // observes EOF rather than hanging or crashing the server.
  char buf[16];
  auto n_or = conn->ReadSome(buf, sizeof(buf), 2000);
  ASSERT_TRUE(n_or.ok()) << n_or.status().ToString();
  EXPECT_EQ(n_or.value(), 0u);  // EOF
  EXPECT_GE(server_metrics.GetCounter("net_frame_corrupt_total")->value(),
            1u);
  // The server still serves fresh connections afterwards.
  RpcClient client(ClientConfig(*server));
  auto result = client.Call(1, "post-garbage");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "post-garbage");
}

TEST(NetRpcTest, TornRequestFrameNeverExecutesTheHandler) {
  std::atomic<int> handled{0};
  auto server = StartEchoServer(
      nullptr, [&](uint8_t, std::string_view body) -> Result<std::string> {
        ++handled;
        return std::string(body);
      });
  // A valid frame cut mid-payload, then a hard close: the server must
  // treat it as a torn stream and not dispatch a half request.
  const std::string frame = EncodeFrame(1, std::string(1000, 'x'));
  auto conn_or = TcpConn::Connect(server->endpoint(), 1000);
  ASSERT_TRUE(conn_or.ok());
  auto conn = conn_or.take();
  ASSERT_TRUE(conn->WriteAll(frame.data(), frame.size() / 2, 1000).ok());
  conn->Close();
  // Give the server a moment to observe the EOF.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(handled.load(), 0);
  RpcClient client(ClientConfig(*server));
  ASSERT_TRUE(client.Call(1, "whole").ok());
  EXPECT_EQ(handled.load(), 1);
}

TEST(NetRpcTest, ManySequentialCallsReuseOneConnection) {
  obs::MetricsRegistry client_metrics;
  auto server = StartEchoServer(nullptr);
  RpcClient client(ClientConfig(*server, &client_metrics));
  for (int i = 0; i < 200; ++i) {
    auto result = client.Call(1, std::to_string(i));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value(), std::to_string(i));
  }
  EXPECT_EQ(client_metrics.GetCounter("net_reconnects_total")->value(), 0u);
}

}  // namespace
}  // namespace turbo::net
