// Frame-codec torture suite (DESIGN.md §15): for ANY byte stream the
// decoder must yield either the exact frames that were encoded,
// kNeedMore (a valid proper prefix), or kCorrupt — never a crash and
// never a wrong payload. Enforced exhaustively: truncation at every
// byte boundary, a bit flip at every byte, a stream split at every
// boundary, plus a seeded random fuzz loop. Failing fuzz inputs are
// written to net_fuzz_corpus/ (CI uploads it as an artifact).
#include "net/frame.h"

#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace turbo::net {
namespace {

using Event = FrameDecoder::Event;

std::string SamplePayload(size_t n, uint8_t seed = 7) {
  std::string payload(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>((i * 131 + seed) & 0xff);
  }
  return payload;
}

/// Feeds `bytes` whole and decodes everything available.
std::vector<Frame> DecodeAllFrames(std::string_view bytes,
                                   Event* final_event,
                                   FrameLimits limits = {}) {
  FrameDecoder decoder(limits);
  decoder.Feed(bytes);
  std::vector<Frame> frames;
  while (true) {
    Frame frame;
    const Event e = decoder.Next(&frame);
    if (e == Event::kFrame) {
      frames.push_back(std::move(frame));
      continue;
    }
    *final_event = e;
    return frames;
  }
}

/// Failing fuzz inputs land here for the CI artifact upload.
void SaveCorpus(const std::string& name, std::string_view bytes) {
  std::filesystem::create_directories("net_fuzz_corpus");
  std::ofstream out("net_fuzz_corpus/" + name, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(NetFrameTest, RoundTripEmptyAndLargePayloads) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{13}, size_t{4096},
                         size_t{1 << 18}}) {
    const std::string payload = SamplePayload(n);
    const std::string wire = EncodeFrame(42, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + n);
    Event final_event;
    const std::vector<Frame> frames = DecodeAllFrames(wire, &final_event);
    ASSERT_EQ(frames.size(), 1u) << "payload size " << n;
    EXPECT_EQ(frames[0].type, 42);
    EXPECT_EQ(frames[0].payload, payload);
    EXPECT_EQ(final_event, Event::kNeedMore);
  }
}

TEST(NetFrameTest, BackToBackFramesDecodeInOrder) {
  std::string wire;
  for (uint8_t t = 1; t <= 5; ++t) {
    AppendFrame(t, SamplePayload(t * 17, t), &wire);
  }
  Event final_event;
  const std::vector<Frame> frames = DecodeAllFrames(wire, &final_event);
  ASSERT_EQ(frames.size(), 5u);
  for (uint8_t t = 1; t <= 5; ++t) {
    EXPECT_EQ(frames[t - 1].type, t);
    EXPECT_EQ(frames[t - 1].payload, SamplePayload(t * 17, t));
  }
  EXPECT_EQ(final_event, Event::kNeedMore);
}

TEST(NetFrameTest, TruncationAtEveryByteIsCleanlyIncomplete) {
  const std::string payload = SamplePayload(97);
  const std::string wire = EncodeFrame(3, payload);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Event final_event;
    const std::vector<Frame> frames = DecodeAllFrames(
        std::string_view(wire).substr(0, cut), &final_event);
    EXPECT_TRUE(frames.empty()) << "cut " << cut;
    EXPECT_EQ(final_event, Event::kNeedMore) << "cut " << cut;
  }
}

TEST(NetFrameTest, BitFlipAtEveryByteIsDetectedNeverMisdecoded) {
  const std::string payload = SamplePayload(61);
  const std::string wire = EncodeFrame(9, payload);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      Event final_event;
      const std::vector<Frame> frames =
          DecodeAllFrames(flipped, &final_event);
      // The only acceptable outcomes are detection (kCorrupt) or — for
      // a flip that enlarged the announced length within bounds — never
      // here, because the header CRC covers the length field. A decoded
      // frame or a clean kNeedMore would mean the flip went unnoticed.
      EXPECT_TRUE(frames.empty()) << "pos " << pos << " bit " << bit;
      EXPECT_EQ(final_event, Event::kCorrupt)
          << "pos " << pos << " bit " << bit;
      if (::testing::Test::HasFailure()) {
        SaveCorpus("bitflip_" + std::to_string(pos) + "_" +
                       std::to_string(bit) + ".bin",
                   flipped);
        return;
      }
    }
  }
}

TEST(NetFrameTest, SplitAtEveryBoundaryReassembles) {
  std::string wire;
  AppendFrame(1, SamplePayload(29, 1), &wire);
  AppendFrame(2, SamplePayload(57, 2), &wire);
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, cut));
    std::vector<Frame> frames;
    Frame frame;
    while (decoder.Next(&frame) == Event::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_FALSE(decoder.corrupt()) << "cut " << cut;
    decoder.Feed(std::string_view(wire).substr(cut));
    while (decoder.Next(&frame) == Event::kFrame) {
      frames.push_back(frame);
    }
    ASSERT_FALSE(decoder.corrupt()) << "cut " << cut;
    ASSERT_EQ(frames.size(), 2u) << "cut " << cut;
    EXPECT_EQ(frames[0].payload, SamplePayload(29, 1));
    EXPECT_EQ(frames[1].payload, SamplePayload(57, 2));
  }
}

TEST(NetFrameTest, OneByteAtATimeFeedDecodes) {
  const std::string payload = SamplePayload(83);
  const std::string wire = EncodeFrame(7, payload);
  FrameDecoder decoder;
  Frame frame;
  size_t decoded = 0;
  for (const char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    if (decoder.Next(&frame) == Event::kFrame) ++decoded;
  }
  ASSERT_EQ(decoded, 1u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(NetFrameTest, OversizedAnnouncedPayloadIsCorruptNotStall) {
  FrameLimits limits;
  limits.max_payload = 64;
  const std::string wire = EncodeFrame(1, SamplePayload(65));
  Event final_event;
  const std::vector<Frame> frames =
      DecodeAllFrames(wire, &final_event, limits);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(final_event, Event::kCorrupt);
  // Within the limit passes.
  limits.max_payload = 65;
  const std::vector<Frame> ok =
      DecodeAllFrames(wire, &final_event, limits);
  ASSERT_EQ(ok.size(), 1u);
}

TEST(NetFrameTest, CorruptionIsStickyUntilNewDecoder) {
  std::string wire = EncodeFrame(1, SamplePayload(10));
  wire[2] = static_cast<char>(wire[2] ^ 0x10);
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), Event::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_FALSE(decoder.error().empty());
  // A pristine frame fed afterwards must NOT resurrect the stream: the
  // byte-sync is gone; only a new connection (new decoder) recovers.
  decoder.Feed(EncodeFrame(2, SamplePayload(5)));
  EXPECT_EQ(decoder.Next(&frame), Event::kCorrupt);
}

TEST(NetFrameTest, FuzzRandomStreamsNeverCrashOrMisdecode) {
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    // Build a stream of valid frames, then mutate or truncate it.
    std::string wire;
    std::vector<std::string> payloads;
    const int nframes = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < nframes; ++f) {
      payloads.push_back(SamplePayload(rng() % 200,
                                       static_cast<uint8_t>(rng())));
      AppendFrame(static_cast<uint8_t>(f + 1), payloads.back(), &wire);
    }
    std::string stream = wire;
    const int mode = static_cast<int>(rng() % 3);
    if (mode == 1 && !stream.empty()) {
      stream.resize(rng() % stream.size());  // truncate
    } else if (mode == 2 && !stream.empty()) {
      const int flips = 1 + static_cast<int>(rng() % 4);
      for (int f = 0; f < flips; ++f) {
        stream[rng() % stream.size()] ^=
            static_cast<char>(1 << (rng() % 8));
      }
    }
    // Feed in random-sized pieces.
    FrameDecoder decoder;
    std::vector<Frame> frames;
    size_t at = 0;
    bool corrupt = false;
    while (at < stream.size() && !corrupt) {
      const size_t n = std::min<size_t>(1 + rng() % 64,
                                        stream.size() - at);
      decoder.Feed(std::string_view(stream).substr(at, n));
      at += n;
      Frame frame;
      while (true) {
        const Event e = decoder.Next(&frame);
        if (e == Event::kFrame) {
          frames.push_back(std::move(frame));
          continue;
        }
        corrupt = e == Event::kCorrupt;
        break;
      }
    }
    // Every decoded frame must be a prefix-exact match of what was
    // encoded; mode 0 (untouched) must decode everything.
    bool bad = frames.size() > payloads.size();
    for (size_t f = 0; !bad && f < frames.size(); ++f) {
      bad = frames[f].payload != payloads[f] ||
            frames[f].type != static_cast<uint8_t>(f + 1);
    }
    if (mode == 0 && (corrupt || frames.size() != payloads.size())) {
      bad = true;
    }
    if (bad) {
      SaveCorpus("fuzz_iter_" + std::to_string(iter) + ".bin", stream);
      FAIL() << "fuzz iteration " << iter << " misdecoded (mode " << mode
             << ", " << frames.size() << "/" << payloads.size()
             << " frames, corrupt=" << corrupt
             << "); input saved to net_fuzz_corpus/";
    }
  }
}

}  // namespace
}  // namespace turbo::net
