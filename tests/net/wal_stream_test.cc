// Streaming WAL ship over RPC (DESIGN.md §15): ShipWalOverRpc into a
// WalSinkService must be byte-equivalent to the local ShipWalDir, the
// receiver's offset-checked appends must turn client retries into
// verified no-ops and divergence into loud failures, and a connection
// killed mid-ship must leave exactly the torn-but-resumable tail shape
// the standby replay protocol already tolerates. The end-to-end test
// drives a real primary + WarmStandby through catch-up, a mid-ship
// kill, a checkpoint-rotation gap, Rebootstrap, and Promote.
#include "net/wal_stream.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/rpc.h"
#include "server/bn_server.h"
#include "server/warm_standby.h"
#include "storage/wal.h"
#include "storage/wal_ship.h"
#include "util/time_util.h"

namespace turbo::net {
namespace {

namespace fs = std::filesystem;

constexpr int kUsers = 64;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

storage::WalOptions NoFsync() {
  storage::WalOptions o;
  o.fsync = storage::WalOptions::Fsync::kNever;
  o.group_commit_records = 1;
  return o;
}

/// Writes `n` ingest records into segment `seq` of `dir` and closes it.
void WriteSegment(const std::string& dir, uint64_t seq, int n) {
  storage::WalWriter w;
  ASSERT_TRUE(w.Open(dir, seq, NoFsync()).ok());
  for (int i = 0; i < n; ++i) {
    const BehaviorLog log{static_cast<UserId>(i), BehaviorType::kIpv4,
                          static_cast<ValueId>(100 + i), i * kMinute};
    ASSERT_TRUE(w.Append(storage::WalRecord::Ingest(log)).ok());
  }
  ASSERT_TRUE(w.Close().ok());
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Every regular file of `dir`, as name -> bytes.
std::vector<std::pair<std::string, std::string>> DirContents(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files.emplace_back(entry.path().filename().string(),
                       ReadBytes(entry.path().string()));
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::unique_ptr<WalSinkService> StartSink(const std::string& replica_dir) {
  WalSinkServiceConfig cfg;
  cfg.endpoint.port = 0;
  cfg.replica_dir = replica_dir;
  auto service_or = WalSinkService::Start(cfg);
  EXPECT_TRUE(service_or.ok()) << service_or.status().ToString();
  return service_or.take();
}

RpcClientConfig SinkClientConfig(const WalSinkService& service,
                                 obs::MetricsRegistry* metrics = nullptr) {
  RpcClientConfig cfg;
  cfg.endpoint = service.endpoint();
  cfg.metrics = metrics;
  cfg.backoff_initial_ms = 1;
  cfg.backoff_max_ms = 10;
  return cfg;
}

/// Chaos sink: forwards to an RpcWalShipSink but hard-kills the
/// service's connections immediately before append number `kill_at`.
class KillingSink final : public storage::WalShipSink {
 public:
  KillingSink(RpcClient* client, WalSinkService* service, int kill_at)
      : inner_(client), service_(service), kill_at_(kill_at) {}

  Result<storage::WalShipFileStat> Stat(const std::string& name,
                                        bool want_crc) override {
    return inner_.Stat(name, want_crc);
  }
  Status AppendAt(const std::string& name, uint64_t offset,
                  std::string_view bytes) override {
    if (appends_++ == kill_at_) service_->CloseConnections();
    return inner_.AppendAt(name, offset, bytes);
  }
  Status WriteAtomic(const std::string& name,
                     std::string_view bytes) override {
    return inner_.WriteAtomic(name, bytes);
  }
  Status Delete(const std::string& name) override {
    return inner_.Delete(name);
  }
  Result<std::vector<std::string>> ListFiles() override {
    return inner_.ListFiles();
  }

  int appends() const { return appends_; }

 private:
  RpcWalShipSink inner_;
  WalSinkService* service_;
  int kill_at_;
  int appends_ = 0;
};

TEST(NetWalStreamTest, RemoteShipMatchesLocalShipByteForByte) {
  const std::string src = FreshDir("netship_src");
  const std::string remote = FreshDir("netship_remote");
  const std::string local = FreshDir("netship_local");
  WriteSegment(src, 1, 5);
  WriteSegment(src, 2, 3);
  WriteBytes(src + "/checkpoint.bin", "fake-checkpoint-bytes");

  auto service = StartSink(remote);
  RpcClient client(SinkClientConfig(*service));
  auto remote_or = ShipWalOverRpc(src, &client);
  ASSERT_TRUE(remote_or.ok()) << remote_or.status().ToString();
  auto local_or = storage::ShipWalDir(src, local);
  ASSERT_TRUE(local_or.ok());

  // Identical stats and identical replica bytes.
  EXPECT_EQ(remote_or.value().segments_created,
            local_or.value().segments_created);
  EXPECT_EQ(remote_or.value().segment_bytes_appended,
            local_or.value().segment_bytes_appended);
  EXPECT_EQ(remote_or.value().checkpoint_files_copied,
            local_or.value().checkpoint_files_copied);
  EXPECT_EQ(remote_or.value().max_segment_seq,
            local_or.value().max_segment_seq);
  EXPECT_EQ(DirContents(remote), DirContents(local));
  EXPECT_EQ(DirContents(remote), DirContents(src));
}

TEST(NetWalStreamTest, ReshipOverRpcIsANoOp) {
  const std::string src = FreshDir("netship_noop_src");
  const std::string remote = FreshDir("netship_noop_remote");
  WriteSegment(src, 1, 4);
  WriteBytes(src + "/checkpoint.bin", "ckpt");

  auto service = StartSink(remote);
  RpcClient client(SinkClientConfig(*service));
  ASSERT_TRUE(ShipWalOverRpc(src, &client).ok());
  auto again_or = ShipWalOverRpc(src, &client);
  ASSERT_TRUE(again_or.ok());
  EXPECT_EQ(again_or.value().segments_created, 0u);
  EXPECT_EQ(again_or.value().segment_bytes_appended, 0u);
  EXPECT_EQ(again_or.value().checkpoint_files_copied, 0u);
  EXPECT_EQ(again_or.value().files_deleted, 0u);
}

TEST(NetWalStreamTest, GrowingTailShipsOnlyTheAppendedBytes) {
  const std::string src = FreshDir("netship_grow_src");
  const std::string remote = FreshDir("netship_grow_remote");
  WriteSegment(src, 1, 5);
  auto service = StartSink(remote);
  RpcClient client(SinkClientConfig(*service));
  ASSERT_TRUE(ShipWalOverRpc(src, &client).ok());

  // The primary appends more bytes to the live segment.
  const std::string seg = storage::WalSegmentPath(src, 1);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    out.write("tail-bytes", 10);
  }
  auto stats_or = ShipWalOverRpc(src, &client);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().segments_created, 0u);
  EXPECT_EQ(stats_or.value().segment_bytes_appended, 10u);
  EXPECT_EQ(ReadBytes(storage::WalSegmentPath(remote, 1)), ReadBytes(seg));
}

TEST(NetWalStreamTest, ReceiverVerifiesAppendOffsetsAndTails) {
  const std::string remote = FreshDir("netship_verify_remote");
  auto service = StartSink(remote);
  RpcClient client(SinkClientConfig(*service));
  RpcWalShipSink sink(&client);

  const std::string name = "wal-00000001.log";
  ASSERT_TRUE(sink.AppendAt(name, 0, "abc").ok());
  // Replayed duplicate (client retry after a lost response): verified
  // no-op, the file does not double.
  ASSERT_TRUE(sink.AppendAt(name, 0, "abc").ok());
  EXPECT_EQ(ReadBytes(remote + "/" + name), "abc");
  // A gap is refused...
  EXPECT_EQ(sink.AppendAt(name, 5, "zz").code(),
            StatusCode::kFailedPrecondition);
  // ...and so is a same-length divergent tail.
  EXPECT_EQ(sink.AppendAt(name, 0, "abd").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ReadBytes(remote + "/" + name), "abc");
  // In-order continuation lands.
  ASSERT_TRUE(sink.AppendAt(name, 3, "def").ok());
  EXPECT_EQ(ReadBytes(remote + "/" + name), "abcdef");
}

TEST(NetWalStreamTest, PathEscapingNamesAreRejected) {
  const std::string remote = FreshDir("netship_names_remote");
  auto service = StartSink(remote);
  RpcClient client(SinkClientConfig(*service));
  RpcWalShipSink sink(&client);
  for (const std::string& name :
       {std::string("../evil"), std::string("a/b"), std::string("")}) {
    EXPECT_FALSE(sink.AppendAt(name, 0, "x").ok()) << name;
    EXPECT_FALSE(sink.WriteAtomic(name, "x").ok()) << name;
    EXPECT_FALSE(sink.Stat(name, false).ok()) << name;
    EXPECT_FALSE(sink.Delete(name).ok()) << name;
  }
  EXPECT_TRUE(DirContents(remote).empty());
  EXPECT_FALSE(fs::exists(testing::TempDir() + "/evil"));
}

TEST(NetWalStreamTest, KillMidShipLeavesResumableTailThenConverges) {
  const std::string src = FreshDir("netship_kill_src");
  const std::string remote = FreshDir("netship_kill_remote");
  WriteSegment(src, 1, 200);
  const size_t src_size =
      static_cast<size_t>(fs::file_size(storage::WalSegmentPath(src, 1)));

  auto service = StartSink(remote);
  storage::WalShipOptions options;
  options.append_chunk_bytes = 64;  // many chunks per segment

  {
    // No retries: the kill before the 4th append aborts this round.
    RpcClientConfig cfg = SinkClientConfig(*service);
    cfg.max_retries = 0;
    RpcClient client(cfg);
    KillingSink sink(&client, service.get(), /*kill_at=*/3);
    auto stats_or = storage::ShipWal(src, &sink, options);
    ASSERT_FALSE(stats_or.ok());
    EXPECT_TRUE(stats_or.status().IsUnavailable())
        << stats_or.status().ToString();
  }
  // Some prefix landed; the rest did not.
  const std::string replica_seg = storage::WalSegmentPath(remote, 1);
  ASSERT_TRUE(fs::exists(replica_seg));
  const size_t partial = static_cast<size_t>(fs::file_size(replica_seg));
  EXPECT_GT(partial, 0u);
  EXPECT_LT(partial, src_size);

  // The next round re-stats the replica and resumes at its true size.
  obs::MetricsRegistry metrics;
  RpcClient client(SinkClientConfig(*service, &metrics));
  auto stats_or = ShipWalOverRpc(src, &client, options);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_EQ(stats_or.value().segments_created, 0u);
  EXPECT_EQ(stats_or.value().segment_bytes_appended, src_size - partial);
  EXPECT_EQ(ReadBytes(replica_seg),
            ReadBytes(storage::WalSegmentPath(src, 1)));
}

// --- End-to-end: primary -> RPC ship -> standby ----------------------

server::BnServerConfig SmallConfig(const std::string& wal_dir = "") {
  server::BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = kUsers;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  cfg.wal_dir = wal_dir;
  return cfg;
}

BehaviorLogList Traffic(SimTime t0, SimTime t1, int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = t0 + (i * 977 * kMinute) % (t1 - t0);
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 13 % kUsers),
                               BehaviorType::kIpv4,
                               static_cast<ValueId>(1 + i % 9), t});
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % kUsers),
                               BehaviorType::kWifiMac,
                               static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

void ExpectIdentical(const server::BnServer& a, const server::BnServer& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < kUsers; ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
}

TEST(NetWalStreamTest, StandbyTracksKilledShipsAndRebootstrapsOnGap) {
  const std::string primary_dir = FreshDir("netship_e2e_primary");
  const std::string replica_dir = FreshDir("netship_e2e_replica");
  auto primary = std::make_unique<server::BnServer>(SmallConfig(primary_dir));
  auto service = StartSink(replica_dir);
  server::WarmStandbyConfig scfg;
  scfg.server = SmallConfig();
  scfg.replica_dir = replica_dir;
  server::WarmStandby standby(scfg);

  // Round 1: plain RPC ship bootstraps the standby bit-identically.
  primary->IngestBatch(Traffic(0, kDay, 120));
  primary->AdvanceTo(kDay);
  obs::MetricsRegistry metrics;
  RpcClient client(SinkClientConfig(*service, &metrics));
  ASSERT_TRUE(ShipWalOverRpc(primary_dir, &client).ok());
  ASSERT_TRUE(standby.CatchUp().ok());
  ASSERT_TRUE(standby.bootstrapped());
  ExpectIdentical(*primary, *standby.server());

  // Round 2: the connection dies mid-ship; the client's retry loop
  // reconnects (every sink op is receiver-side idempotent) and the
  // standby still lands bit-identical.
  primary->IngestBatch(Traffic(kDay, kDay + 5 * kHour, 60));
  primary->AdvanceTo(kDay + 5 * kHour);
  storage::WalShipOptions options;
  options.append_chunk_bytes = 128;
  KillingSink sink(&client, service.get(), /*kill_at=*/1);
  auto stats_or = storage::ShipWal(primary_dir, &sink, options);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_GE(metrics.GetCounter("net_reconnects_total")->value(), 1u);
  ASSERT_TRUE(standby.CatchUp().ok());
  ExpectIdentical(*primary, *standby.server());

  // Round 3: checkpoint rotation on the primary; the mirror-delete ship
  // removes the segments this standby was consuming. CatchUp detects
  // the gap; Rebootstrap rebuilds from the shipped checkpoint.
  primary->IngestBatch(Traffic(kDay + 5 * kHour, kDay + 8 * kHour, 40));
  primary->AdvanceTo(kDay + 8 * kHour);
  ASSERT_TRUE(primary->Checkpoint(primary_dir).ok());
  primary->IngestBatch(Traffic(kDay + 8 * kHour, kDay + 11 * kHour, 40));
  primary->AdvanceTo(kDay + 11 * kHour);
  ASSERT_TRUE(ShipWalOverRpc(primary_dir, &client).ok());
  const Status gap = standby.CatchUp();
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.message().find("replication gap"), std::string::npos)
      << gap.message();
  ASSERT_TRUE(standby.Rebootstrap().ok());
  ExpectIdentical(*primary, *standby.server());

  // Round 4: the primary dies; the standby promotes into a durable
  // primary over the RPC-shipped replica directory.
  primary.reset();
  auto promoted_or = standby.Promote();
  ASSERT_TRUE(promoted_or.ok()) << promoted_or.status().message();
  server::BnServer* promoted = promoted_or.value();
  promoted->IngestBatch(Traffic(kDay + 11 * kHour, kDay + 14 * kHour, 30));
  promoted->AdvanceTo(kDay + 14 * kHour);
  server::BnServer recovered(SmallConfig(replica_dir));
  ASSERT_TRUE(recovered.Recover(replica_dir).ok());
  ExpectIdentical(*promoted, recovered);
}

}  // namespace
}  // namespace turbo::net
