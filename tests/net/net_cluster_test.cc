// Socket-cluster conformance (DESIGN.md §15): a BnCluster routing to
// shards over real loopback sockets (ShardService + RemoteShardClient)
// must be bit-identical to the in-process cluster — per-shard edge
// state, snapshot CSR bytes, sampling, offer/drain admission,
// checkpoint/recover, and HAG prediction outputs — and must stay
// bit-identical under connection kills injected mid-run.
#include "net/remote_shard.h"

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/turbo.h"
#include "net/shard_service.h"
#include "server/bn_cluster.h"

namespace turbo::net {
namespace {

constexpr int kUsers = 64;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

server::BnServerConfig SmallConfig() {
  server::BnServerConfig cfg;
  cfg.bn.windows = {kHour, kDay};
  cfg.num_users = kUsers;
  cfg.snapshot_refresh = kHour;
  cfg.window_job_threads = 1;
  cfg.snapshot_build_threads = 1;
  return cfg;
}

BehaviorLogList Traffic(SimTime t0, SimTime t1, int n) {
  BehaviorLogList logs;
  for (int i = 0; i < n; ++i) {
    const SimTime t = t0 + (i * 977 * kMinute) % (t1 - t0);
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 13 % kUsers),
                               BehaviorType::kIpv4,
                               static_cast<ValueId>(1 + i % 9), t});
    logs.push_back(BehaviorLog{static_cast<UserId>(i * 7 % kUsers),
                               BehaviorType::kWifiMac,
                               static_cast<ValueId>(100 + i % 5), t});
  }
  return logs;
}

/// Same bit-level equality contract as tests/server/bn_cluster_test.cc,
/// applied here between an in-process shard and the BnServer backing a
/// socket shard.
void ExpectIdentical(const server::BnServer& a, const server::BnServer& b,
                     int num_users = kUsers) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.jobs_run(), b.jobs_run());
  EXPECT_EQ(a.edges_expired(), b.edges_expired());
  EXPECT_EQ(a.logs().size(), b.logs().size());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    ASSERT_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t)) << "type " << t;
    for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
      const auto& na = a.edges().Neighbors(t, u);
      const auto& nb = b.edges().Neighbors(t, u);
      ASSERT_EQ(na.size(), nb.size()) << "type " << t << " uid " << u;
      for (const auto& [v, e] : na) {
        auto it = nb.find(v);
        ASSERT_NE(it, nb.end()) << "edge " << u << "-" << v;
        EXPECT_EQ(e.weight, it->second.weight) << "edge " << u << "-" << v;
        EXPECT_EQ(e.last_update, it->second.last_update);
      }
    }
  }
  EXPECT_EQ(a.snapshot_version(), b.snapshot_version());
  if (a.snapshot_version() != 0 && b.snapshot_version() != 0) {
    auto sa = a.snapshot();
    auto sb = b.snapshot();
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      for (UserId u = 0; u < static_cast<UserId>(num_users); ++u) {
        bn::NeighborSpan ra = sa->Neighbors(t, u);
        bn::NeighborSpan rb = sb->Neighbors(t, u);
        ASSERT_EQ(ra.size(), rb.size()) << "type " << t << " uid " << u;
        for (size_t i = 0; i < ra.size(); ++i) {
          EXPECT_EQ(ra.id(i), rb.id(i));
          EXPECT_EQ(ra.weight(i), rb.weight(i));
        }
      }
    }
  }
}

/// An N-shard cluster whose shards live behind real loopback sockets:
/// per-shard BnServers (the "remote" processes), a ShardService each,
/// and a handle-mode BnCluster over RemoteShardClients.
struct SocketRig {
  server::BnServerConfig tmpl;
  std::vector<std::unique_ptr<server::BnServer>> backing;
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<RemoteShardClient*> clients;  // owned by `cluster`
  std::unique_ptr<server::BnCluster> cluster;
  obs::MetricsRegistry client_metrics;

  SocketRig(server::BnServerConfig config, int n,
            std::vector<std::string> dirs = {})
      : tmpl(std::move(config)) {
    bn::ShardTopology t = tmpl.bn.topology;
    t.shard_count = n;
    const server::ShardRouter router(t);
    for (int i = 0; i < n; ++i) {
      server::BnServerConfig shard = tmpl;
      shard.bn.topology = router.TopologyForShard(i);
      shard.metrics = nullptr;
      shard.wal_dir = dirs.empty() ? std::string() : dirs[i];
      backing.push_back(std::make_unique<server::BnServer>(std::move(shard)));
    }
  }

  /// `predictions[i]` (optional) is hosted by shard i's service.
  void StartServices(
      std::vector<std::string> dirs = {},
      std::vector<server::PredictionServer*> predictions = {}) {
    std::vector<std::unique_ptr<server::ShardHandle>> handles;
    for (size_t i = 0; i < backing.size(); ++i) {
      ShardServiceConfig scfg;
      scfg.endpoint.port = 0;
      scfg.shard_dir = dirs.empty() ? std::string() : dirs[i];
      auto service_or = ShardService::Start(
          scfg, backing[i].get(),
          predictions.empty() ? nullptr : predictions[i]);
      ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
      services.push_back(service_or.take());

      RemoteShardConfig rcfg;
      rcfg.endpoint = services.back()->endpoint();
      rcfg.rpc.metrics = &client_metrics;
      rcfg.rpc.backoff_initial_ms = 1;
      rcfg.rpc.backoff_max_ms = 10;
      auto client = std::make_unique<RemoteShardClient>(rcfg);
      clients.push_back(client.get());
      handles.push_back(std::move(client));
    }
    server::BnClusterConfig ccfg;
    ccfg.shard = tmpl;
    cluster = std::make_unique<server::BnCluster>(ccfg, std::move(handles));
  }
};

TEST(NetClusterTest, TwoShardSocketClusterIsBitIdenticalToInProcess) {
  server::BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 2;
  server::BnCluster inproc(ccfg);
  SocketRig rig(SmallConfig(), 2);
  rig.StartServices();
  ASSERT_EQ(rig.cluster->num_shards(), 2);
  EXPECT_FALSE(rig.cluster->local());

  const BehaviorLogList logs = Traffic(0, 3 * kDay, 300);
  inproc.IngestBatch(logs);
  rig.cluster->IngestBatch(logs);
  inproc.AdvanceTo(3 * kDay);
  rig.cluster->AdvanceTo(3 * kDay);

  EXPECT_EQ(rig.cluster->now(), inproc.now());
  EXPECT_EQ(rig.cluster->epoch(), inproc.epoch());
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(inproc.shard(s), *rig.backing[s]);
  }
  // The serving surface routes identically: same subgraphs sampled from
  // the same pinned snapshot versions, shipped over the wire bit-exact.
  for (UserId u = 0; u < kUsers; u += 5) {
    const bn::Subgraph a = inproc.SampleSubgraph(u);
    const bn::Subgraph b = rig.cluster->SampleSubgraph(u);
    EXPECT_EQ(a.nodes, b.nodes) << "uid " << u;
    EXPECT_EQ(a.num_targets, b.num_targets);
    for (int t = 0; t < kNumEdgeTypes; ++t) {
      ASSERT_EQ(a.edges[t].size(), b.edges[t].size()) << "uid " << u;
      for (size_t i = 0; i < a.edges[t].size(); ++i) {
        EXPECT_EQ(a.edges[t][i].row, b.edges[t][i].row);
        EXPECT_EQ(a.edges[t][i].col, b.edges[t][i].col);
        EXPECT_EQ(a.edges[t][i].value, b.edges[t][i].value);
      }
    }
    EXPECT_EQ(a.snapshot_version, b.snapshot_version);
    EXPECT_EQ(rig.cluster->snapshot_version_for(u),
              inproc.snapshot_version_for(u));
  }
  // A shard service hosting no PredictionServer refuses Predict.
  auto miss = rig.clients[0]->Predict(0);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NetClusterTest, ConnectionKillsMidRunStayBitIdentical) {
  server::BnClusterConfig ccfg;
  ccfg.shard = SmallConfig();
  ccfg.num_shards = 2;
  server::BnCluster inproc(ccfg);
  SocketRig rig(SmallConfig(), 2);
  rig.StartServices();

  for (int round = 0; round < 4; ++round) {
    // Chaos between rounds: client-side drops are transparent to any
    // call (the request provably never went out); server-side kills are
    // absorbed by the next idempotent read's reconnect loop.
    if (round == 1 || round == 3) {
      rig.clients[0]->client().DebugDropConnection();
    }
    if (round >= 2) {
      rig.services[1]->CloseConnections();
      EXPECT_EQ(rig.clients[1]->snapshot_version(),
                inproc.shard(1).snapshot_version());
    }
    const SimTime t0 = round * kDay;
    const BehaviorLogList logs = Traffic(t0, t0 + kDay, 60);
    inproc.IngestBatch(logs);
    rig.cluster->IngestBatch(logs);
    inproc.AdvanceTo(t0 + kDay);
    rig.cluster->AdvanceTo(t0 + kDay);
  }
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(inproc.shard(s), *rig.backing[s]);
  }
  EXPECT_GE(
      rig.client_metrics.GetCounter("net_reconnects_total")->value(), 1u);
}

TEST(NetClusterTest, OfferDrainOverSocketsMatchesDirectIngest) {
  server::BnClusterConfig direct_cfg;
  direct_cfg.shard = SmallConfig();
  direct_cfg.num_shards = 2;
  server::BnCluster direct(direct_cfg);

  server::BnServerConfig queued = SmallConfig();
  queued.ingest_queue_capacity = 4096;
  SocketRig rig(queued, 2);
  rig.StartServices();

  const BehaviorLogList logs = Traffic(0, kDay, 100);
  direct.IngestBatch(logs);
  for (const BehaviorLog& log : logs) {
    ASSERT_TRUE(rig.cluster->OfferIngest(log));
  }
  EXPECT_GT(rig.cluster->ingest_queue_depth(), 0u);
  rig.cluster->DrainIngest();
  EXPECT_EQ(rig.cluster->ingest_queue_depth(), 0u);
  direct.AdvanceTo(kDay);
  rig.cluster->AdvanceTo(kDay);
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(direct.shard(s), *rig.backing[s]);
  }
}

TEST(NetClusterTest, CheckpointAndRecoverOverSockets) {
  const std::vector<std::string> dirs = {FreshDir("netc_ckpt_s0"),
                                         FreshDir("netc_ckpt_s1")};
  SocketRig writer(SmallConfig(), 2, dirs);
  writer.StartServices(dirs);
  writer.cluster->IngestBatch(Traffic(0, kDay, 120));
  writer.cluster->AdvanceTo(kDay);
  ASSERT_TRUE(writer.cluster->Checkpoint().ok());
  // WAL tail past the checkpoint.
  writer.cluster->IngestBatch(Traffic(kDay, kDay + 5 * kHour, 60));
  writer.cluster->AdvanceTo(kDay + 5 * kHour);

  SocketRig recovered(SmallConfig(), 2, dirs);
  recovered.StartServices(dirs);
  ASSERT_TRUE(recovered.cluster->Recover().ok());
  for (int s = 0; s < 2; ++s) {
    ExpectIdentical(*writer.backing[s], *recovered.backing[s]);
  }

  // A shard served without a durability dir refuses both operations.
  SocketRig bare(SmallConfig(), 1);
  bare.StartServices();
  const Status no_ckpt = bare.cluster->Checkpoint();
  ASSERT_FALSE(no_ckpt.ok());
  EXPECT_EQ(no_ckpt.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(bare.cluster->Recover().ok());
}

TEST(NetClusterTest, RemotePredictionsAreBitIdenticalToInProcess) {
  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(300));
  core::PipelineConfig pcfg;
  pcfg.bn.windows = {kHour, kDay};
  auto data = core::PrepareData(std::move(ds), pcfg);
  core::HagConfig hcfg;
  hcfg.hidden = {16, 8};
  hcfg.attention_dim = 8;
  hcfg.mlp_hidden = 8;
  // Deterministic seeded init, no training: bit-identity only needs the
  // same weights on both sides.
  core::Hag model(hcfg);
  model.Init(static_cast<int>(data->features.cols()));

  server::BnServerConfig bcfg;
  bcfg.bn = pcfg.bn;
  bcfg.num_users = 300;

  // In-process reference stack.
  server::BnClusterConfig ccfg;
  ccfg.shard = bcfg;
  ccfg.num_shards = 2;
  server::BnCluster inproc(ccfg);
  inproc.IngestBatch(data->dataset.logs);
  const SimTime horizon = data->dataset.logs.back().time + kDay;
  inproc.AdvanceTo(horizon);

  features::FeatureStoreConfig fcfg;
  auto put_profiles = [&](features::FeatureStore* store) {
    for (UserId u = 0; u < 300; ++u) {
      const float* row = data->dataset.profile_features.row(u);
      store->PutProfile(
          u, std::vector<float>(
                 row, row + data->dataset.profile_features.cols()));
    }
  };
  std::vector<std::unique_ptr<features::FeatureStore>> local_stores;
  std::vector<std::unique_ptr<server::PredictionServer>> local_servers;
  std::vector<server::PredictionServer*> local_raw;
  for (int s = 0; s < 2; ++s) {
    local_stores.push_back(std::make_unique<features::FeatureStore>(
        fcfg, &inproc.shard(s).logs()));
    put_profiles(local_stores.back().get());
    server::PredictionConfig scfg;
    scfg.shard_tag = static_cast<uint32_t>(s + 1);
    local_servers.push_back(std::make_unique<server::PredictionServer>(
        scfg, &inproc.shard(s), local_stores.back().get(), &model,
        &data->scaler));
    local_raw.push_back(local_servers.back().get());
  }
  server::ClusterPredictionRouter router(&inproc.router(), local_raw);

  // Socket stack: the same model served behind ShardServices.
  SocketRig rig(bcfg, 2);
  std::vector<std::unique_ptr<features::FeatureStore>> remote_stores;
  std::vector<std::unique_ptr<server::PredictionServer>> remote_servers;
  std::vector<server::PredictionServer*> remote_raw;
  for (int s = 0; s < 2; ++s) {
    remote_stores.push_back(std::make_unique<features::FeatureStore>(
        fcfg, &rig.backing[s]->logs()));
    put_profiles(remote_stores.back().get());
    server::PredictionConfig scfg;
    scfg.shard_tag = static_cast<uint32_t>(s + 1);
    remote_servers.push_back(std::make_unique<server::PredictionServer>(
        scfg, rig.backing[s].get(), remote_stores.back().get(), &model,
        &data->scaler));
    remote_raw.push_back(remote_servers.back().get());
  }
  rig.StartServices({}, remote_raw);
  rig.cluster->IngestBatch(data->dataset.logs);
  rig.cluster->AdvanceTo(horizon);

  std::vector<UserId> uids(data->test_uids.begin(),
                           data->test_uids.begin() +
                               std::min<size_t>(16, data->test_uids.size()));
  bool used[2] = {false, false};
  for (const UserId uid : uids) {
    const int owner = rig.cluster->router().OwnerOfUser(uid);
    used[owner] = true;
    const server::PredictionResponse local = router.Handle(uid);
    auto remote_or = rig.clients[owner]->Predict(uid);
    ASSERT_TRUE(remote_or.ok()) << remote_or.status().ToString();
    const server::PredictionResponse& remote = remote_or.value();
    EXPECT_EQ(remote.fraud_probability, local.fraud_probability)
        << "uid " << uid;
    EXPECT_EQ(remote.blocked, local.blocked) << "uid " << uid;
    EXPECT_EQ(remote.subgraph_nodes, local.subgraph_nodes) << "uid " << uid;
    EXPECT_EQ(remote.snapshot_version, local.snapshot_version);
  }
  EXPECT_TRUE(used[0] && used[1]) << "test traffic never crossed shards";
}

}  // namespace
}  // namespace turbo::net
