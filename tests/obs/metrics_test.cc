#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace turbo::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("events_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, GetReturnsSamePointer) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("a_total"), reg.GetCounter("a_total"));
  EXPECT_NE(reg.GetCounter("a_total"), reg.GetCounter("b_total"));
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("version");
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  g->Set(7.0);
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.5);
}

TEST(HistogramTest, EmptyIsZero) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency_ms");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Max(), 0.0);
}

TEST(HistogramTest, CountSumMeanMinMax) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency_ms");
  for (double v : {1.0, 2.0, 3.0, 10.0}) h->Observe(v);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 16.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 4.0);
  EXPECT_DOUBLE_EQ(h->Min(), 1.0);
  EXPECT_DOUBLE_EQ(h->Max(), 10.0);
}

TEST(HistogramTest, ExtremeQuantilesAreExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency_ms");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 100.0);
}

TEST(HistogramTest, MidQuantilesWithinOneBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency_ms");
  for (int i = 1; i <= 1000; ++i) {
    h->Observe(static_cast<double>(i) / 10.0);  // 0.1 .. 100.0
  }
  // Default buckets grow by 1.5x, so the interpolated estimate must be
  // within a factor of 1.5 of the exact nearest-rank percentile.
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = q * 100.0;
    const double est = h->Percentile(q);
    EXPECT_GT(est, exact / 1.5) << "q=" << q;
    EXPECT_LT(est, exact * 1.5) << "q=" << q;
  }
}

TEST(HistogramTest, TailSensitiveP999) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("latency_ms");
  for (int i = 0; i < 1999; ++i) h->Observe(1.0);
  h->Observe(500.0);
  EXPECT_LT(h->Percentile(0.5), 2.0);
  EXPECT_LT(h->Percentile(0.999), 2.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 500.0);
}

TEST(HistogramTest, OverflowBucketCatchesOutOfRange) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("small", {1.0, 2.0});
  h->Observe(100.0);
  EXPECT_EQ(h->BucketCount(2), 1u);  // overflow bucket
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 100.0);
}

TEST(HistogramTest, ValueOnBoundFallsInLeBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("le", {1.0, 2.0, 4.0});
  h->Observe(2.0);  // le="2" bucket, Prometheus semantics
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 0u);
}

TEST(HistogramTest, ExponentialBucketsShape) {
  auto b = Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  const auto& lat = Histogram::DefaultLatencyBucketsMs();
  EXPECT_TRUE(std::is_sorted(lat.begin(), lat.end()));
  EXPECT_GT(lat.back(), 60000.0);  // covers the uncached Section V tail
}

TEST(HistogramTest, SummaryContainsFields) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("module_ms");
  h->Observe(2.5);
  const auto s = h->Summary("module");
  EXPECT_NE(s.find("module"), std::string::npos);
  EXPECT_NE(s.find("p999"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(RegistryTest, RenderTextIsPrometheusShaped) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total")->Increment(3);
  reg.GetGauge("version")->Set(2.0);
  Histogram* h = reg.GetHistogram("lat_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(99.0);
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE version gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  // Cumulative: +Inf bucket equals the total count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);
}

TEST(RegistryTest, RenderJsonContainsPercentiles) {
  MetricsRegistry reg;
  reg.GetCounter("n_total")->Increment();
  Histogram* h = reg.GetHistogram("lat_ms");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"n_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces — cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(RegistryTest, DefaultRegistryIsProcessWide) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(RegistryDeathTest, KindCollisionAborts) {
  MetricsRegistry reg;
  reg.GetCounter("name");
  EXPECT_DEATH(reg.GetGauge("name"), "another");
}

TEST(RegistryDeathTest, BadNameAborts) {
  MetricsRegistry reg;
  EXPECT_DEATH(reg.GetCounter("bad name"), "bad metric name");
}

}  // namespace
}  // namespace turbo::obs
