#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace turbo::obs {
namespace {

TEST(StageTimerTest, SpansLandInPrefixedHistograms) {
  MetricsRegistry reg;
  {
    StageTimer timer(&reg, "predict", 7);
    EXPECT_EQ(timer.request_id(), 7u);
    {
      auto span = timer.StartSpan("sample");
      const double ms = span.Stop();
      EXPECT_GE(ms, 0.0);
    }
    timer.RecordStage("feature", 2.5);
    ASSERT_EQ(timer.spans().size(), 2u);
    EXPECT_EQ(timer.spans()[0].stage, "sample");
    EXPECT_EQ(timer.spans()[1].stage, "feature");
    EXPECT_DOUBLE_EQ(timer.spans()[1].millis, 2.5);
    const double total = timer.Finish();
    EXPECT_DOUBLE_EQ(total, timer.TotalMillis());
  }
  EXPECT_EQ(reg.GetHistogram("predict_sample_ms")->count(), 1u);
  EXPECT_EQ(reg.GetHistogram("predict_feature_ms")->count(), 1u);
  EXPECT_EQ(reg.GetHistogram("predict_total_ms")->count(), 1u);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("predict_feature_ms")->Sum(), 2.5);
}

TEST(StageTimerTest, ModeledCostAddsToWallTime) {
  MetricsRegistry reg;
  StageTimer timer(&reg, "t", 1);
  auto span = timer.StartSpan("stage");
  span.AddModeledMillis(100.0);
  const double ms = span.Stop();
  EXPECT_GE(ms, 100.0);
  EXPECT_DOUBLE_EQ(timer.spans()[0].millis, ms);
}

TEST(StageTimerTest, StopIsIdempotent) {
  MetricsRegistry reg;
  StageTimer timer(&reg, "t", 1);
  auto span = timer.StartSpan("stage");
  const double first = span.Stop();
  EXPECT_DOUBLE_EQ(span.Stop(), first);
  EXPECT_EQ(timer.spans().size(), 1u);
  EXPECT_EQ(reg.GetHistogram("t_stage_ms")->count(), 1u);
}

TEST(StageTimerTest, ScopeExitStopsSpan) {
  MetricsRegistry reg;
  StageTimer timer(&reg, "t", 1);
  {
    auto span = timer.StartSpan("scoped");
  }
  EXPECT_EQ(reg.GetHistogram("t_scoped_ms")->count(), 1u);
}

TEST(StageTimerTest, DestructorFinishesTrace) {
  MetricsRegistry reg;
  {
    StageTimer timer(&reg, "t", 1);
    timer.RecordStage("a", 1.0);
  }
  EXPECT_EQ(reg.GetHistogram("t_total_ms")->count(), 1u);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("t_total_ms")->Sum(), 1.0);
}

TEST(StageTimerTest, FinishIsIdempotent) {
  MetricsRegistry reg;
  StageTimer timer(&reg, "t", 1);
  timer.RecordStage("a", 1.0);
  EXPECT_DOUBLE_EQ(timer.Finish(), 1.0);
  EXPECT_DOUBLE_EQ(timer.Finish(), 1.0);
  EXPECT_EQ(reg.GetHistogram("t_total_ms")->count(), 1u);
}

TEST(StageTimerTest, TotalSumsAllSpansExactly) {
  MetricsRegistry reg;
  StageTimer timer(&reg, "t", 1);
  timer.RecordStage("a", 1.25);
  timer.RecordStage("b", 2.5);
  timer.RecordStage("c", 0.25);
  EXPECT_DOUBLE_EQ(timer.Finish(), 1.25 + 2.5 + 0.25);
}

}  // namespace
}  // namespace turbo::obs
