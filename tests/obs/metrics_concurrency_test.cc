// Registry concurrency: N writer threads hammer counters, gauges, and
// histograms while a reader thread renders the registry. Runs under TSan
// in the sanitizers workflow — the point is that post-registration metric
// writes are lock-free and render sees a consistent (if stale) view.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace turbo::obs {
namespace {

TEST(MetricsConcurrencyTest, WritersAndRenderRaceFree) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  Counter* counter = reg.GetCounter("ops_total");
  Gauge* gauge = reg.GetGauge("last_value");
  Histogram* hist = reg.GetHistogram("op_ms");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = reg.RenderText();
      // Well-formed under concurrent writes...
      EXPECT_NE(text.find("# TYPE ops_total counter"), std::string::npos);
      EXPECT_NE(text.find("op_ms_count"), std::string::npos);
      // ...and the counter never moves backwards.
      const uint64_t count = counter->value();
      EXPECT_GE(count, last_count);
      last_count = count;
      const std::string json = reg.RenderJson();
      EXPECT_NE(json.find("\"ops_total\""), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(i));
        hist->Observe(static_cast<double>((w * 31 + i) % 100) / 10.0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kWriters) * kOpsPerWriter;
  EXPECT_EQ(counter->value(), kTotal);
  EXPECT_EQ(hist->count(), kTotal);
  // Bucket counts are exact once writers are quiescent.
  uint64_t bucketed = 0;
  for (size_t i = 0; i <= hist->bounds().size(); ++i) {
    bucketed += hist->BucketCount(i);
  }
  EXPECT_EQ(bucketed, kTotal);
}

TEST(MetricsConcurrencyTest, IncrementReturnsUniqueIds) {
  // The fetch-add result is the race-free way to mint request ids; a
  // separate value() readback can observe another thread's increment and
  // hand out duplicates.
  MetricsRegistry reg;
  Counter* counter = reg.GetCounter("request_ids");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        ids[t].push_back(counter->Increment());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i + 1) << "ids must be dense and duplicate-free";
  }
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // All threads race to create the same metric and then write it.
      seen[t] = reg.GetCounter("shared_total");
      seen[t]->Increment();
      reg.GetHistogram("shared_ms")->Observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace turbo::obs
