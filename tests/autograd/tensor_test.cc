#include "autograd/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace turbo::ag {
namespace {

using la::Matrix;

TEST(TensorTest, ConstantHasNoGrad) {
  Tensor c = Constant(Matrix(2, 2, 1.0f));
  EXPECT_FALSE(c->requires_grad);
  EXPECT_FALSE(c->has_grad());
}

TEST(TensorTest, ParamRequiresGrad) {
  Tensor p = Param(Matrix(2, 2, 1.0f));
  EXPECT_TRUE(p->requires_grad);
}

TEST(TensorTest, RequiresGradPropagates) {
  Tensor c = Constant(Matrix(2, 2, 1.0f));
  Tensor p = Param(Matrix(2, 2, 1.0f));
  EXPECT_FALSE(Add(c, c)->requires_grad);
  EXPECT_TRUE(Add(c, p)->requires_grad);
}

TEST(BackwardTest, SumGradIsOnes) {
  Tensor p = Param(Matrix(2, 3, 2.0f));
  Backward(Sum(p));
  ASSERT_TRUE(p->has_grad());
  for (size_t i = 0; i < p->grad.size(); ++i) {
    EXPECT_FLOAT_EQ(p->grad.data()[i], 1.0f);
  }
}

TEST(BackwardTest, MeanGradIsUniform) {
  Tensor p = Param(Matrix(2, 2, 2.0f));
  Backward(Mean(p));
  EXPECT_FLOAT_EQ(p->grad(0, 0), 0.25f);
}

TEST(BackwardTest, ChainRuleThroughScalarMul) {
  Tensor p = Param(Matrix(1, 1, 3.0f));
  Tensor loss = ScalarMul(Sum(p), 5.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(p->grad(0, 0), 5.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // loss = sum(p + p): grad should be 2 everywhere.
  Tensor p = Param(Matrix(2, 2, 1.0f));
  Backward(Sum(Add(p, p)));
  EXPECT_FLOAT_EQ(p->grad(1, 1), 2.0f);
}

TEST(BackwardTest, SharedSubexpressionVisitedOnce) {
  // y = p*p used twice; grad = d/dp [2 * sum(p^2)] = 4p.
  Tensor p = Param(Matrix(1, 1, 3.0f));
  Tensor y = Mul(p, p);
  Backward(Sum(Add(y, y)));
  EXPECT_FLOAT_EQ(p->grad(0, 0), 12.0f);
}

TEST(BackwardTest, GradsAccumulateAcrossCalls) {
  Tensor p = Param(Matrix(1, 1, 1.0f));
  Backward(Sum(p));
  Backward(Sum(p));
  EXPECT_FLOAT_EQ(p->grad(0, 0), 2.0f);
  p->ClearGrad();
  EXPECT_FALSE(p->has_grad());
}

TEST(BackwardTest, MatMulGradKnownValues) {
  // loss = sum(A*B); dA = ones * B^T, dB = A^T * ones.
  Tensor a = Param(Matrix::FromRows({{1, 2}, {3, 4}}), "A");
  Tensor b = Param(Matrix::FromRows({{5, 6}, {7, 8}}), "B");
  Backward(Sum(MatMul(a, b)));
  EXPECT_TRUE(la::AllClose(a->grad, Matrix::FromRows({{11, 15}, {11, 15}})));
  EXPECT_TRUE(la::AllClose(b->grad, Matrix::FromRows({{4, 4}, {6, 6}})));
}

TEST(BackwardTest, ReluMasksNegativeGrad) {
  Tensor p = Param(Matrix::FromRows({{-1, 2}}));
  Backward(Sum(Relu(p)));
  EXPECT_FLOAT_EQ(p->grad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p->grad(0, 1), 1.0f);
}

TEST(BackwardTest, SpMMForwardAndBackward) {
  auto adj = la::SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
  Tensor x = Param(Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}}));
  Tensor y = SpMM(adj, x);
  EXPECT_FLOAT_EQ(y->value(0, 0), 7.0f);   // 1*1 + 2*3
  EXPECT_FLOAT_EQ(y->value(1, 0), 6.0f);   // 3*2
  Backward(Sum(y));
  // grad_x = A^T * ones(2,2)
  EXPECT_FLOAT_EQ(x->grad(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x->grad(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(x->grad(2, 0), 2.0f);
}

TEST(BackwardTest, ConcatSplitsGradient) {
  Tensor a = Param(Matrix(2, 1, 1.0f), "a");
  Tensor b = Param(Matrix(2, 2, 1.0f), "b");
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c->value.cols(), 3u);
  // Scale columns differently to make the split observable.
  Tensor gate = Constant(Matrix::FromRows({{1, 2, 3}}));
  // loss = sum(c + broadcast(gate)) has uniform grad; instead multiply.
  Tensor weighted = Mul(c, Constant(Matrix::FromRows({{1, 2, 3}, {1, 2, 3}})));
  Backward(Sum(weighted));
  EXPECT_FLOAT_EQ(a->grad(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b->grad(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(b->grad(1, 1), 3.0f);
}

TEST(BackwardTest, SliceColsGradGoesToSlice) {
  Tensor a = Param(Matrix::FromRows({{1, 2, 3}}));
  Backward(Sum(SliceCols(a, 1, 2)));
  EXPECT_FLOAT_EQ(a->grad(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(a->grad(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a->grad(0, 2), 1.0f);
}

TEST(BackwardDeathTest, NonScalarRootAborts) {
  Tensor p = Param(Matrix(2, 2, 1.0f));
  EXPECT_DEATH(Backward(Add(p, p)), "scalar");
}

TEST(BceTest, MatchesHandComputedLoss) {
  // z=0 -> loss = log(2) regardless of label.
  Tensor logits = Param(Matrix(2, 1, 0.0f));
  Matrix targets = Matrix::FromRows({{1}, {0}});
  Matrix w(2, 1, 1.0f);
  Tensor loss = BceWithLogits(logits, targets, w);
  EXPECT_NEAR(loss->value(0, 0), std::log(2.0f), 1e-5f);
  Backward(loss);
  // grad = (sigmoid(0) - y) / 2 = (0.5 - y)/2
  EXPECT_NEAR(logits->grad(0, 0), -0.25f, 1e-5f);
  EXPECT_NEAR(logits->grad(1, 0), 0.25f, 1e-5f);
}

TEST(BceTest, MaskedSamplesGetNoGradient) {
  Tensor logits = Param(Matrix(3, 1, 1.0f));
  Matrix targets(3, 1, 1.0f);
  Matrix w = Matrix::FromRows({{1}, {0}, {1}});
  Backward(BceWithLogits(logits, targets, w));
  EXPECT_FLOAT_EQ(logits->grad(1, 0), 0.0f);
  EXPECT_NE(logits->grad(0, 0), 0.0f);
}

TEST(BceTest, StableForExtremeLogits) {
  Tensor logits = Param(Matrix::FromRows({{100.0f}, {-100.0f}}));
  Matrix targets = Matrix::FromRows({{1}, {0}});
  Matrix w(2, 1, 1.0f);
  Tensor loss = BceWithLogits(logits, targets, w);
  EXPECT_NEAR(loss->value(0, 0), 0.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(loss->value(0, 0)));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(1);
  Tensor a = Param(Matrix(4, 4, 1.0f));
  Tensor d = Dropout(a, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(d.get(), a.get());
}

TEST(DropoutTest, TrainingModePreservesExpectation) {
  Rng rng(2);
  Tensor a = Constant(Matrix(100, 100, 1.0f));
  Tensor d = Dropout(a, 0.3f, /*training=*/true, &rng);
  EXPECT_NEAR(d->value.Sum() / 10000.0, 1.0, 0.05);
}

TEST(GraphSizeTest, CountsDistinctNodes) {
  Tensor p = Param(Matrix(1, 1, 1.0f));
  Tensor y = Mul(p, p);
  Tensor loss = Sum(Add(y, y));
  // nodes: p, y, add, sum
  EXPECT_EQ(GraphSize(loss), 4u);
}

TEST(L2PenaltyTest, ValueAndGrad) {
  Tensor p = Param(Matrix(1, 2, 2.0f));
  Tensor pen = L2Penalty({p}, 0.5f);
  EXPECT_NEAR(pen->value(0, 0), 0.5f * 0.5f * 8.0f, 1e-5f);
  Backward(pen);
  EXPECT_FLOAT_EQ(p->grad(0, 0), 1.0f);  // lambda * w
}

}  // namespace
}  // namespace turbo::ag
