// Numerical gradient verification for every differentiable operator.
#include "autograd/gradcheck.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace turbo::ag {
namespace {

using la::Matrix;

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{123};

  Tensor RandParam(size_t r, size_t c, const char* name,
                   float stddev = 0.8f) {
    return Param(Matrix::Randn(r, c, &rng_, stddev), name);
  }

  void ExpectGradsOk(const std::vector<Tensor>& params,
                     const std::function<Tensor()>& loss) {
    auto res = CheckGradients(params, loss);
    EXPECT_TRUE(res.ok) << res.detail
                        << " (max_abs_err=" << res.max_abs_err << ")";
  }
};

TEST_F(GradCheckTest, AddSubMul) {
  Tensor a = RandParam(3, 4, "a");
  Tensor b = RandParam(3, 4, "b");
  ExpectGradsOk({a, b}, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
}

TEST_F(GradCheckTest, MatMulChain) {
  Tensor a = RandParam(3, 4, "a");
  Tensor b = RandParam(4, 2, "b");
  Tensor c = RandParam(2, 3, "c");
  ExpectGradsOk({a, b, c}, [&] { return Sum(MatMul(MatMul(a, b), c)); });
}

TEST_F(GradCheckTest, RowBroadcastBias) {
  Tensor x = RandParam(4, 3, "x");
  Tensor bias = RandParam(1, 3, "bias");
  ExpectGradsOk({x, bias},
                [&] { return Sum(Tanh(AddRowBroadcast(x, bias))); });
}

TEST_F(GradCheckTest, ColBroadcastGate) {
  Tensor x = RandParam(4, 3, "x");
  Tensor gate = RandParam(4, 1, "gate");
  ExpectGradsOk({x, gate}, [&] { return Sum(MulColBroadcast(x, gate)); });
}

TEST_F(GradCheckTest, NonlinearitiesSmoothRegion) {
  // Shift inputs away from relu/lrelu kinks for a clean finite-difference.
  Tensor x = Param(
      la::MapT(Matrix::Randn(4, 4, &rng_), [](float v) {
        return v + (v >= 0 ? 0.5f : -0.5f);
      }),
      "x");
  ExpectGradsOk({x}, [&] { return Sum(Relu(x)); });
  ExpectGradsOk({x}, [&] { return Sum(LeakyRelu(x, 0.2f)); });
  ExpectGradsOk({x}, [&] { return Sum(Mul(Tanh(x), Sigmoid(x))); });
}

TEST_F(GradCheckTest, SoftmaxRows) {
  Tensor x = RandParam(3, 5, "x");
  Tensor picks = Constant(Matrix::Randn(3, 5, &rng_));
  ExpectGradsOk({x}, [&] { return Sum(Mul(SoftmaxRows(x), picks)); });
}

TEST_F(GradCheckTest, ConcatAndSlice) {
  Tensor a = RandParam(3, 2, "a");
  Tensor b = RandParam(3, 3, "b");
  Tensor c = RandParam(3, 1, "c");
  Tensor m = Constant(Matrix::Randn(3, 6, &rng_));
  ExpectGradsOk({a, b, c},
                [&] { return Sum(Mul(ConcatColsN({a, b, c}), m)); });
  ExpectGradsOk({b}, [&] { return Sum(Tanh(SliceCols(b, 1, 2))); });
}

TEST_F(GradCheckTest, RowSums) {
  Tensor x = RandParam(4, 3, "x");
  Tensor g = Constant(Matrix::Randn(4, 1, &rng_));
  ExpectGradsOk({x}, [&] { return Sum(Mul(RowSums(x), g)); });
}

TEST_F(GradCheckTest, SpMM) {
  auto adj = la::SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 0.5f}, {1, 0, 0.5f}, {1, 2, 1.5f}, {2, 3, -1.0f},
             {3, 3, 2.0f}});
  Tensor x = RandParam(4, 3, "x");
  ExpectGradsOk({x}, [&] { return Sum(Tanh(SpMM(adj, x))); });
}

TEST_F(GradCheckTest, BceWithLogits) {
  Tensor z = RandParam(6, 1, "z");
  Matrix targets(6, 1);
  Matrix w(6, 1);
  for (int i = 0; i < 6; ++i) {
    targets(i, 0) = (i % 2 == 0) ? 1.0f : 0.0f;
    w(i, 0) = (i == 3) ? 0.0f : 1.0f + 0.3f * i;
  }
  ExpectGradsOk({z}, [&] { return BceWithLogits(z, targets, w); });
}

TEST_F(GradCheckTest, MseLoss) {
  Tensor x = RandParam(3, 3, "x");
  Matrix t = Matrix::Randn(3, 3, &rng_);
  ExpectGradsOk({x}, [&] { return MseLoss(x, t); });
}

TEST_F(GradCheckTest, L2Penalty) {
  Tensor a = RandParam(2, 3, "a");
  Tensor b = RandParam(3, 1, "b");
  ExpectGradsOk({a, b}, [&] { return L2Penalty({a, b}, 0.7f); });
}

TEST_F(GradCheckTest, MlpLikeComposite) {
  // A realistic two-layer network with bias, gate and BCE head.
  Tensor x = Constant(Matrix::Randn(5, 4, &rng_));
  Tensor w1 = RandParam(4, 6, "w1");
  Tensor b1 = RandParam(1, 6, "b1");
  Tensor w2 = RandParam(6, 1, "w2");
  Matrix targets(5, 1);
  for (int i = 0; i < 5; ++i) targets(i, 0) = (i < 2) ? 1.0f : 0.0f;
  Matrix w(5, 1, 1.0f);
  ExpectGradsOk({w1, b1, w2}, [&] {
    Tensor h = Tanh(AddRowBroadcast(MatMul(x, w1), b1));
    return BceWithLogits(MatMul(h, w2), targets, w);
  });
}

TEST_F(GradCheckTest, AttentionGateComposite) {
  // The SAO-style gate: softmax over two learned scores feeding a
  // column-broadcast mix — the most intricate pattern HAG relies on.
  Tensor h = Constant(Matrix::Randn(4, 3, &rng_));
  Tensor hn = Constant(Matrix::Randn(4, 3, &rng_));
  Tensor ws = RandParam(3, 3, "ws");
  Tensor wn = RandParam(3, 3, "wn");
  Tensor p = RandParam(6, 1, "p");
  Matrix targets(4, 1);
  targets(0, 0) = targets(2, 0) = 1.0f;
  Matrix sw(4, 1, 1.0f);
  Tensor head = RandParam(3, 1, "head");
  ExpectGradsOk({ws, wn, p, head}, [&] {
    Tensor hs = MatMul(h, ws);
    Tensor hnn = MatMul(hn, wn);
    Tensor a_self = MatMul(Tanh(ConcatCols(hs, hs)), p);
    Tensor a_neigh = MatMul(Tanh(ConcatCols(hnn, hs)), p);
    Tensor alphas = SoftmaxRows(ConcatCols(a_self, a_neigh));
    Tensor mixed = Add(MulColBroadcast(h, SliceCols(alphas, 0, 1)),
                       MulColBroadcast(hn, SliceCols(alphas, 1, 1)));
    return BceWithLogits(MatMul(Relu(mixed), head), targets, sw);
  });
}

}  // namespace
}  // namespace turbo::ag
