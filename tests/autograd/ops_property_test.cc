// Parameterized gradient checks: every composite op pattern is verified
// across a sweep of shapes and seeds.
#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"

namespace turbo::ag {
namespace {

struct ShapeCase {
  size_t rows;
  size_t cols;
  uint64_t seed;
};

class OpsPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(OpsPropertyTest, LinearGateChainGradients) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  Tensor x = Param(la::Matrix::Randn(p.rows, p.cols, &rng, 0.6f), "x");
  Tensor w = Param(la::Matrix::Randn(p.cols, 3, &rng, 0.6f), "w");
  Tensor gate = Param(la::Matrix::Randn(p.rows, 1, &rng, 0.6f), "gate");
  auto res = CheckGradients({x, w, gate}, [&] {
    return Sum(Tanh(MulColBroadcast(MatMul(x, w), Sigmoid(gate))));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST_P(OpsPropertyTest, SoftmaxSliceGradients) {
  const auto& p = GetParam();
  if (p.cols < 2) GTEST_SKIP();
  Rng rng(p.seed + 1);
  Tensor x = Param(la::Matrix::Randn(p.rows, p.cols, &rng, 0.8f), "x");
  Tensor pick = Constant(la::Matrix::Randn(p.rows, 1, &rng));
  auto res = CheckGradients({x}, [&] {
    return Sum(Mul(SliceCols(SoftmaxRows(x), p.cols / 2, 1), pick));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST_P(OpsPropertyTest, BceGradientsWithRandomWeights) {
  const auto& p = GetParam();
  Rng rng(p.seed + 2);
  Tensor z = Param(la::Matrix::Randn(p.rows, 1, &rng, 1.2f), "z");
  la::Matrix targets(p.rows, 1);
  la::Matrix w(p.rows, 1);
  for (size_t i = 0; i < p.rows; ++i) {
    targets(i, 0) = rng.NextBool(0.5) ? 1.0f : 0.0f;
    w(i, 0) = static_cast<float>(rng.NextDouble(0.0, 3.0));
  }
  w(0, 0) += 0.1f;  // keep the weight sum positive
  auto res = CheckGradients({z}, [&] {
    return BceWithLogits(z, targets, w);
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST_P(OpsPropertyTest, SpmmChainGradients) {
  const auto& p = GetParam();
  Rng rng(p.seed + 3);
  std::vector<la::Triplet> trips;
  for (size_t i = 0; i < p.rows * 2; ++i) {
    trips.push_back({static_cast<uint32_t>(rng.NextUint(p.rows)),
                     static_cast<uint32_t>(rng.NextUint(p.rows)),
                     static_cast<float>(rng.NextGaussian())});
  }
  auto adj = la::SparseMatrix::FromTriplets(p.rows, p.rows, trips);
  Tensor x = Param(la::Matrix::Randn(p.rows, p.cols, &rng, 0.5f), "x");
  Tensor w = Param(la::Matrix::Randn(p.cols, 2, &rng, 0.5f), "w");
  auto res = CheckGradients({x, w}, [&] {
    return Mean(Tanh(MatMul(SpMM(adj, x), w)));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST_P(OpsPropertyTest, ValueIdentities) {
  const auto& p = GetParam();
  Rng rng(p.seed + 4);
  Tensor a = Constant(la::Matrix::Randn(p.rows, p.cols, &rng));
  Tensor b = Constant(la::Matrix::Randn(p.rows, p.cols, &rng));
  // a - b == a + (-1 * b)
  EXPECT_TRUE(la::AllClose(Sub(a, b)->value,
                           Add(a, ScalarMul(b, -1.0f))->value));
  // sum == rowsums then sum
  EXPECT_NEAR(Sum(a)->value(0, 0), Sum(RowSums(a))->value(0, 0), 1e-3);
  // mean * size == sum
  EXPECT_NEAR(Mean(a)->value(0, 0) * static_cast<float>(p.rows * p.cols),
              Sum(a)->value(0, 0), 1e-2);
  // concat then slice recovers the parts
  Tensor cat = ConcatCols(a, b);
  EXPECT_TRUE(la::AllClose(SliceCols(cat, 0, p.cols)->value, a->value));
  EXPECT_TRUE(
      la::AllClose(SliceCols(cat, p.cols, p.cols)->value, b->value));
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpsPropertyTest,
                         ::testing::Values(ShapeCase{1, 1, 10},
                                           ShapeCase{2, 5, 20},
                                           ShapeCase{7, 3, 30},
                                           ShapeCase{12, 8, 40}));

}  // namespace
}  // namespace turbo::ag
