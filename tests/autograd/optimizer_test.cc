#include "autograd/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace turbo::ag {
namespace {

using la::Matrix;

// Minimize f(w) = sum((w - target)^2) and verify convergence.
double Rosenstep(Optimizer* opt, const Tensor& w, const Matrix& target,
                 int iters) {
  double last = 0.0;
  for (int i = 0; i < iters; ++i) {
    opt->ZeroGrad();
    Tensor loss = MseLoss(w, target);
    last = loss->value(0, 0);
    Backward(loss);
    opt->Step();
  }
  return last;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Param(Matrix(2, 2, 0.0f));
  Matrix target = Matrix::FromRows({{1, -2}, {3, 0.5}});
  Sgd opt({w}, /*lr=*/0.3f);
  double final_loss = Rosenstep(&opt, w, target, 100);
  EXPECT_LT(final_loss, 1e-6);
  EXPECT_TRUE(la::AllClose(w->value, target, 1e-3f, 1e-3f));
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Matrix target(4, 4, 1.0f);
  Tensor w1 = Param(Matrix(4, 4, 0.0f));
  Tensor w2 = Param(Matrix(4, 4, 0.0f));
  Sgd plain({w1}, 0.05f);
  Sgd momentum({w2}, 0.05f, 0.9f);
  double l1 = Rosenstep(&plain, w1, target, 30);
  double l2 = Rosenstep(&momentum, w2, target, 30);
  EXPECT_LT(l2, l1);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w = Param(Matrix(1, 1, 10.0f));
  Sgd opt({w}, 0.1f, 0.0f, /*weight_decay=*/1.0f);
  // Gradient of the data term is zero (target equals current value each
  // step is not used) — run pure decay by backproping a constant loss.
  for (int i = 0; i < 10; ++i) {
    opt.ZeroGrad();
    Tensor loss = ScalarMul(Sum(w), 0.0f);
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(std::abs(w->value(0, 0)), 10.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Param(Matrix(3, 1, -4.0f));
  Matrix target = Matrix::FromRows({{2}, {0}, {-1}});
  Adam opt({w}, 0.1f);
  double final_loss = Rosenstep(&opt, w, target, 300);
  EXPECT_LT(final_loss, 1e-5);
}

TEST(AdamTest, HandlesSparseGradScales) {
  // One coordinate has a 100x larger gradient scale; Adam should still
  // converge both.
  Tensor w = Param(Matrix(1, 2, 0.0f));
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Tensor scaled = Mul(w, Constant(Matrix::FromRows({{10.0f, 0.1f}})));
    Tensor loss = MseLoss(scaled, Matrix::FromRows({{10.0f, 0.1f}}));
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(w->value(0, 0), 1.0f, 0.05f);
  EXPECT_NEAR(w->value(0, 1), 1.0f, 0.05f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor w = Param(Matrix(2, 2, 1.0f));
  Sgd opt({w}, 0.1f);
  Backward(Sum(w));
  EXPECT_TRUE(w->has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(w->has_grad());
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor w = Param(Matrix(1, 2, 0.0f));
  Sgd opt({w}, 0.1f);
  w->AccumGrad(Matrix::FromRows({{3.0f, 4.0f}}));  // norm 5
  double pre = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(w->grad(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(w->grad(0, 1), 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipGradNormNoopBelowThreshold) {
  Tensor w = Param(Matrix(1, 2, 0.0f));
  Sgd opt({w}, 0.1f);
  w->AccumGrad(Matrix::FromRows({{0.3f, 0.4f}}));
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(w->grad(0, 1), 0.4f, 1e-6f);
}

TEST(OptimizerDeathTest, RejectsNonGradParams) {
  Tensor c = Constant(Matrix(1, 1, 0.0f));
  EXPECT_DEATH(Sgd({c}, 0.1f), "has no grad");
}

TEST(AdamTest, StepWithoutGradIsNoop) {
  Tensor w = Param(Matrix(1, 1, 5.0f));
  Adam opt({w}, 0.5f);
  opt.Step();
  EXPECT_FLOAT_EQ(w->value(0, 0), 5.0f);
}

}  // namespace
}  // namespace turbo::ag
