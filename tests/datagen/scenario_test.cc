#include "datagen/scenario.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace turbo::datagen {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig cfg = ScenarioConfig::D1Like(1200);
  cfg.seed = 99;
  return cfg;
}

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(GenerateScenario(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static Dataset* ds_;
};

Dataset* ScenarioTest::ds_ = nullptr;

TEST_F(ScenarioTest, PopulationSizes) {
  EXPECT_EQ(ds_->users.size(), 1200u);
  EXPECT_EQ(ds_->profile_features.rows(), 1200u);
  EXPECT_EQ(ds_->profile_features.cols(),
            static_cast<size_t>(kNumProfileFeatures));
  EXPECT_EQ(ds_->feature_names.size(),
            static_cast<size_t>(kNumProfileFeatures));
}

TEST_F(ScenarioTest, FraudRateApproximatelyRespected) {
  int fraud = ds_->NumFraud();
  // 1200 * 1.4% ≈ 17, ring granularity adds slack.
  EXPECT_GE(fraud, 8);
  EXPECT_LE(fraud, 40);
}

TEST_F(ScenarioTest, LabelsMatchUsers) {
  auto y = ds_->Labels();
  ASSERT_EQ(y.size(), ds_->users.size());
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i], ds_->users[i].is_fraud ? 1 : 0);
  }
}

TEST_F(ScenarioTest, FraudstersAreRingMembersOrLoneWolves) {
  int ring_members = 0, lone = 0;
  for (const auto& u : ds_->users) {
    if (u.is_fraud) {
      EXPECT_TRUE(u.ring_id >= 0 || u.lone_fraud);
      EXPECT_FALSE(u.ring_id >= 0 && u.lone_fraud);
      ring_members += u.ring_id >= 0;
      lone += u.lone_fraud;
    } else {
      EXPECT_EQ(u.ring_id, -1);
      EXPECT_FALSE(u.stealth);
      EXPECT_FALSE(u.lone_fraud);
    }
  }
  EXPECT_GT(ring_members, 0);
  EXPECT_GT(lone, 0);
  // Lone wolves are the minority.
  EXPECT_LT(lone, ring_members);
}

TEST_F(ScenarioTest, RingsRespectSizeBounds) {
  std::unordered_map<int, int> ring_sizes;
  for (const auto& u : ds_->users) {
    if (u.ring_id >= 0) ++ring_sizes[u.ring_id];
  }
  const auto& cfg = ds_->config;
  int oversized = 0;
  for (const auto& [rid, size] : ring_sizes) {
    EXPECT_LE(size, cfg.max_ring_size);
    // The last ring may be truncated below min size.
    if (size < cfg.min_ring_size) ++oversized;
  }
  EXPECT_LE(oversized, 1);
}

TEST_F(ScenarioTest, RingMembersApplyWithinBurstSpan) {
  std::unordered_map<int, std::pair<SimTime, SimTime>> span;
  for (const auto& u : ds_->users) {
    if (u.ring_id < 0) continue;
    auto it = span.find(u.ring_id);
    if (it == span.end()) {
      span[u.ring_id] = {u.application_time, u.application_time};
    } else {
      it->second.first = std::min(it->second.first, u.application_time);
      it->second.second = std::max(it->second.second, u.application_time);
    }
  }
  for (const auto& [rid, mm] : span) {
    EXPECT_LE(mm.second - mm.first, ds_->config.fraud_burst_span);
  }
}

TEST_F(ScenarioTest, LogsSortedAndInHorizon) {
  ASSERT_FALSE(ds_->logs.empty());
  for (size_t i = 1; i < ds_->logs.size(); ++i) {
    EXPECT_LE(ds_->logs[i - 1].time, ds_->logs[i].time);
  }
  for (const auto& l : ds_->logs) {
    EXPECT_GE(l.time, 0);
    EXPECT_LE(l.time, ds_->config.horizon);
    EXPECT_LT(l.uid, ds_->users.size());
    EXPECT_NE(l.value, 0u);
  }
}

TEST_F(ScenarioTest, EveryUserHasLogs) {
  std::vector<int> counts(ds_->users.size(), 0);
  for (const auto& l : ds_->logs) ++counts[l.uid];
  for (int c : counts) EXPECT_GT(c, 0);
}

// Observation 1 of the paper (Fig. 4a-b): the *typical* fraudster's logs
// burst near the application, while normal logs span the lease. Medians
// are used because warmed fraud accounts (a configured minority) carry
// long background histories by design.
TEST_F(ScenarioTest, TimeBurstPattern) {
  std::vector<double> fraud_spans, normal_spans;
  std::unordered_map<UserId, std::pair<SimTime, SimTime>> ranges;
  for (const auto& l : ds_->logs) {
    auto it = ranges.find(l.uid);
    if (it == ranges.end()) {
      ranges[l.uid] = {l.time, l.time};
    } else {
      it->second.first = std::min(it->second.first, l.time);
      it->second.second = std::max(it->second.second, l.time);
    }
  }
  for (const auto& [uid, mm] : ranges) {
    double span_days = static_cast<double>(mm.second - mm.first) / kDay;
    (ds_->users[uid].is_fraud ? fraud_spans : normal_spans)
        .push_back(span_days);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  ASSERT_FALSE(fraud_spans.empty());
  ASSERT_FALSE(normal_spans.empty());
  EXPECT_LT(median(fraud_spans) * 5, median(normal_spans));
}

// Observation 2/3 groundwork: ring members share devices with *temporal
// co-occurrence* (within a day), which is what BN keys on. Time-agnostic
// sharing also happens among normal users (households, secondhand
// handsets) — by design, so that bipartite baselines are confusable —
// hence the windowed test.
TEST_F(ScenarioTest, DeviceSharingWithinRings) {
  std::unordered_map<ValueId, std::vector<std::pair<UserId, SimTime>>> obs;
  for (const auto& l : ds_->logs) {
    if (l.type == BehaviorType::kDeviceId) {
      obs[l.value].push_back({l.uid, l.time});
    }
  }
  std::set<UserId> windowed_sharers;
  for (auto& [v, o] : obs) {
    std::sort(o.begin(), o.end(),
              [](const auto& a, const auto& b) {
                return a.second < b.second;
              });
    for (size_t i = 1; i < o.size(); ++i) {
      if (o[i].first != o[i - 1].first &&
          o[i].second - o[i - 1].second <= kDay) {
        windowed_sharers.insert(o[i].first);
        windowed_sharers.insert(o[i - 1].first);
      }
    }
  }
  int fraud_sharing = 0, fraud_total = 0;
  int normal_sharing = 0, normal_total = 0;
  for (const auto& u : ds_->users) {
    if (u.ring_id >= 0) {  // lone wolves intentionally do not share
      ++fraud_total;
      fraud_sharing += windowed_sharers.count(u.uid) > 0;
    } else if (!u.is_fraud) {
      ++normal_total;
      normal_sharing += windowed_sharers.count(u.uid) > 0;
    }
  }
  ASSERT_GT(fraud_total, 0);
  const double fraud_rate = static_cast<double>(fraud_sharing) / fraud_total;
  const double normal_rate =
      static_cast<double>(normal_sharing) / normal_total;
  EXPECT_GT(fraud_rate, 0.85);
  EXPECT_LT(normal_rate, 0.3);
  EXPECT_GT(fraud_rate, 2.5 * normal_rate);
}

// Uses its own larger population: the softened per-feature shifts need
// ~35+ risky fraudsters before sample means separate reliably.
TEST(ScenarioFeatureTest, RiskyFraudFeaturesShifted) {
  auto ds = GenerateScenario(ScenarioConfig::D1Like(6000));
  double normal_sum = 0, risky_sum = 0, stealth_sum = 0;
  int nn = 0, nr = 0, ns = 0;
  for (const auto& u : ds.users) {
    double v = ds.profile_features(u.uid, 4);  // credit_score
    if (!u.is_fraud) {
      normal_sum += v;
      ++nn;
    } else if (u.stealth) {
      stealth_sum += v;
      ++ns;
    } else {
      risky_sum += v;
      ++nr;
    }
  }
  ASSERT_GT(nr, 20);
  ASSERT_GT(ns, 10);
  EXPECT_LT(risky_sum / nr, normal_sum / nn - 15.0);
  EXPECT_NEAR(stealth_sum / ns, normal_sum / nn, 40.0);
}

TEST(ScenarioDeterminismTest, SameSeedSameData) {
  auto a = GenerateScenario(SmallConfig());
  auto b = GenerateScenario(SmallConfig());
  ASSERT_EQ(a.logs.size(), b.logs.size());
  EXPECT_TRUE(std::equal(a.logs.begin(), a.logs.end(), b.logs.begin()));
  EXPECT_TRUE(la::AllClose(a.profile_features, b.profile_features, 0, 0));
}

TEST(ScenarioDeterminismTest, DifferentSeedDifferentData) {
  auto cfg = SmallConfig();
  auto a = GenerateScenario(cfg);
  cfg.seed = 100;
  auto b = GenerateScenario(cfg);
  EXPECT_NE(a.logs.size(), b.logs.size());
}

TEST(ScenarioPresetTest, D2HasMajorityPositives) {
  auto cfg = ScenarioConfig::D2Like(800);
  auto ds = GenerateScenario(cfg);
  double rate = static_cast<double>(ds.NumFraud()) / ds.users.size();
  EXPECT_GT(rate, 0.5);
  EXPECT_LT(rate, 0.8);
}

TEST(ScenarioConfigDeathTest, RejectsBadConfig) {
  ScenarioConfig cfg;
  cfg.num_users = 0;
  EXPECT_DEATH(GenerateScenario(cfg), "CHECK failed");
  cfg = ScenarioConfig{};
  cfg.fraud_rate = 1.5;
  EXPECT_DEATH(GenerateScenario(cfg), "CHECK failed");
}

}  // namespace
}  // namespace turbo::datagen
