// Learning-behavior tests for the GNN baselines on a synthetic
// two-community graph whose label signal is stronger in the topology than
// in the raw features — aggregation must help.
#include <gtest/gtest.h>

#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "gnn/sage.h"
#include "gnn/trainer.h"
#include "metrics/metrics.h"

namespace turbo::gnn {
namespace {

struct Community {
  GraphBatch batch;
  std::vector<int> labels;  // per node
};

// Two communities of `size`; intra-community edges with prob 0.3 split
// between edge types 0 and 1; weak per-node feature signal.
Community MakeCommunities(int size, uint64_t seed) {
  Rng rng(seed);
  const int n = 2 * size;
  bn::Subgraph sg;
  sg.num_targets = n;
  for (int i = 0; i < n; ++i) {
    sg.nodes.push_back(static_cast<UserId>(i));
    sg.local[static_cast<UserId>(i)] = i;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool same = (i < size) == (j < size);
      if (same && rng.NextBool(0.3)) {
        const int type = rng.NextBool(0.5) ? 0 : 1;
        sg.edges[type].push_back({static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(j), 1.0f});
        sg.edges[type].push_back({static_cast<uint32_t>(j),
                                  static_cast<uint32_t>(i), 1.0f});
      } else if (!same && rng.NextBool(0.02)) {
        sg.edges[0].push_back({static_cast<uint32_t>(i),
                               static_cast<uint32_t>(j), 1.0f});
        sg.edges[0].push_back({static_cast<uint32_t>(j),
                               static_cast<uint32_t>(i), 1.0f});
      }
    }
  }
  la::Matrix features(n, 4);
  Community out;
  for (int i = 0; i < n; ++i) {
    const bool pos = i < size;
    out.labels.push_back(pos);
    features(i, 0) =
        static_cast<float>(rng.NextGaussian(pos ? 0.4 : -0.4, 1.0));
    for (int c = 1; c < 4; ++c) {
      features(i, c) = static_cast<float>(rng.NextGaussian());
    }
  }
  // Feature matrix is indexed by global id == local id here.
  out.batch = MakeGraphBatch(sg, features);
  return out;
}

GnnConfig TinyConfig() {
  GnnConfig cfg;
  cfg.hidden = {16, 8};
  cfg.mlp_hidden = 8;
  cfg.attention_dim = 8;
  cfg.dropout = 0.05f;
  return cfg;
}

TrainConfig FastTrain() {
  TrainConfig cfg;
  cfg.epochs = 120;
  cfg.lr = 5e-3f;
  return cfg;
}

double TrainEvalAuc(GnnModel* model) {
  auto train = MakeCommunities(25, 1);
  auto test = MakeCommunities(25, 2);
  model->Init(4);
  GnnTrainer trainer(FastTrain());
  trainer.Fit(model, train.batch, train.labels);
  auto scores = GnnTrainer::PredictTargets(model, test.batch);
  return metrics::RocAuc(scores, test.labels);
}

TEST(GcnTest, LearnsCommunityStructureInductively) {
  Gcn model(TinyConfig());
  EXPECT_GT(TrainEvalAuc(&model), 0.85);
}

TEST(SageTest, LearnsCommunityStructureInductively) {
  GraphSage model(TinyConfig());
  EXPECT_GT(TrainEvalAuc(&model), 0.85);
}

TEST(GatTest, LearnsCommunityStructureInductively) {
  // Attention models need a larger step on this tiny graph to escape the
  // feature-memorization regime (its relative weakness vs GraphSAGE is
  // consistent with Table III).
  auto train = MakeCommunities(25, 1);
  auto test = MakeCommunities(25, 2);
  Gat model(TinyConfig());
  model.Init(4);
  TrainConfig tc = FastTrain();
  tc.lr = 5e-2f;
  GnnTrainer trainer(tc);
  trainer.Fit(&model, train.batch, train.labels);
  auto scores = GnnTrainer::PredictTargets(&model, test.batch);
  EXPECT_GT(metrics::RocAuc(scores, test.labels), 0.85);
}

TEST(GnnTest, GraphModelsBeatFeatureOnlySignal) {
  // The per-node feature signal alone gives a mediocre AUC; the trained
  // GNN should clearly exceed it.
  auto test = MakeCommunities(25, 2);
  std::vector<double> feature_scores;
  for (size_t i = 0; i < test.batch.num_nodes(); ++i) {
    feature_scores.push_back(test.batch.features(i, 0));
  }
  const double feature_auc = metrics::RocAuc(feature_scores, test.labels);
  GraphSage model(TinyConfig());
  const double gnn_auc = TrainEvalAuc(&model);
  EXPECT_GT(gnn_auc, feature_auc + 0.05);
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  auto data = MakeCommunities(20, 3);
  GraphSage model(TinyConfig());
  model.Init(4);
  TrainConfig one;
  one.epochs = 1;
  const double initial = GnnTrainer(one).Fit(&model, data.batch, data.labels);
  TrainConfig more;
  more.epochs = 100;
  more.lr = 5e-3f;
  const double trained = GnnTrainer(more).Fit(&model, data.batch, data.labels);
  EXPECT_LT(trained, initial * 0.7);
}

TEST(TrainerTest, PredictionsAreProbabilities) {
  auto data = MakeCommunities(10, 4);
  Gcn model(TinyConfig());
  model.Init(4);
  GnnTrainer trainer(FastTrain());
  trainer.Fit(&model, data.batch, data.labels);
  for (double p : GnnTrainer::PredictAll(&model, data.batch)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(TrainerTest, MaskedLossIgnoresContextRows) {
  // Only 10 of 40 rows are targets; labels vector must match target count.
  auto data = MakeCommunities(20, 5);
  data.batch.num_targets = 10;
  data.labels.resize(10);
  GraphSage model(TinyConfig());
  model.Init(4);
  GnnTrainer trainer(FastTrain());
  EXPECT_NO_FATAL_FAILURE(trainer.Fit(&model, data.batch, data.labels));
  auto scores = GnnTrainer::PredictTargets(&model, data.batch);
  EXPECT_EQ(scores.size(), 10u);
}

TEST(TrainerDeathTest, LabelCountMismatchAborts) {
  auto data = MakeCommunities(10, 6);
  GraphSage model(TinyConfig());
  model.Init(4);
  GnnTrainer trainer(FastTrain());
  std::vector<int> bad(data.batch.num_targets + 1, 0);
  EXPECT_DEATH(trainer.Fit(&model, data.batch, bad), "CHECK failed");
}

TEST(GnnTest, DeterministicTrainingForSameSeed) {
  auto data = MakeCommunities(15, 7);
  GraphSage a(TinyConfig()), b(TinyConfig());
  a.Init(4);
  b.Init(4);
  GnnTrainer ta(FastTrain()), tb(FastTrain());
  ta.Fit(&a, data.batch, data.labels);
  tb.Fit(&b, data.batch, data.labels);
  auto pa = GnnTrainer::PredictAll(&a, data.batch);
  auto pb = GnnTrainer::PredictAll(&b, data.batch);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace turbo::gnn
