#include "gnn/graph_batch.h"

#include <gtest/gtest.h>

namespace turbo::gnn {
namespace {

// Hand-built subgraph: 3 nodes; type 0 edge (0,1) w=2; type 1 edge (1,2)
// w=4. Global ids 10, 11, 12.
bn::Subgraph MakeSubgraph() {
  bn::Subgraph sg;
  sg.nodes = {10, 11, 12};
  sg.num_targets = 2;
  sg.local = {{10, 0}, {11, 1}, {12, 2}};
  sg.edges[0] = {{0, 1, 2.0f}, {1, 0, 2.0f}};
  sg.edges[1] = {{1, 2, 4.0f}, {2, 1, 4.0f}};
  return sg;
}

la::Matrix MakeFeatures() {
  la::Matrix f(20, 2);
  for (size_t r = 0; r < 20; ++r) {
    f(r, 0) = static_cast<float>(r);
    f(r, 1) = static_cast<float>(r) * 10;
  }
  return f;
}

TEST(GraphBatchTest, GathersFeaturesByGlobalId) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  EXPECT_EQ(batch.num_nodes(), 3u);
  EXPECT_EQ(batch.num_targets, 2u);
  EXPECT_FLOAT_EQ(batch.features(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(batch.features(2, 1), 120.0f);
}

TEST(GraphBatchTest, TypeAdjacenciesSeparate) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  EXPECT_EQ(batch.type_adj[0].nnz(), 2u);
  EXPECT_EQ(batch.type_adj[1].nnz(), 2u);
  EXPECT_EQ(batch.type_adj[2].nnz(), 0u);
  la::Matrix d0 = batch.type_adj[0].ToDense();
  EXPECT_FLOAT_EQ(d0(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(d0(1, 2), 0.0f);
}

TEST(GraphBatchTest, TypeMeanRowsNormalized) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  la::Matrix rs = batch.type_mean[0].RowSums();
  EXPECT_NEAR(rs(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(rs(1, 0), 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(rs(2, 0), 0.0f);  // no type-0 edges at node 2
}

TEST(GraphBatchTest, UnionMergesTypes) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  la::Matrix u = batch.union_adj.ToDense();
  EXPECT_FLOAT_EQ(u(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(u(1, 2), 4.0f);
  EXPECT_FLOAT_EQ(u(1, 0), 2.0f);
}

TEST(GraphBatchTest, RwSelfIncludesSelfLoopAndNormalizes) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  la::Matrix a = batch.union_rw_self.ToDense();
  // Node 0: neighbors {1 (2.0), self (1.0)} -> row sums to 1.
  EXPECT_NEAR(a(0, 0) + a(0, 1) + a(0, 2), 1.0f, 1e-6f);
  EXPECT_GT(a(0, 0), 0.0f);
  // Isolated-from-union? none here, but every row must sum to 1.
  la::Matrix rs = batch.union_rw_self.RowSums();
  for (size_t r = 0; r < 3; ++r) EXPECT_NEAR(rs(r, 0), 1.0f, 1e-6f);
}

TEST(GraphBatchTest, SelfStructureHasUnitValues) {
  auto batch = MakeGraphBatch(MakeSubgraph(), MakeFeatures());
  for (float v : batch.union_self_structure.values()) {
    EXPECT_FLOAT_EQ(v, 1.0f);
  }
  // 4 directed union edges + 3 self loops.
  EXPECT_EQ(batch.union_self_structure.nnz(), 7u);
}

TEST(GraphBatchTest, SingletonSubgraph) {
  bn::Subgraph sg;
  sg.nodes = {5};
  sg.num_targets = 1;
  sg.local = {{5, 0}};
  auto batch = MakeGraphBatch(sg, MakeFeatures());
  EXPECT_EQ(batch.num_nodes(), 1u);
  EXPECT_EQ(batch.union_adj.nnz(), 0u);
  // Self-loop keeps GCN aggregation well-defined.
  EXPECT_EQ(batch.union_rw_self.nnz(), 1u);
  EXPECT_FLOAT_EQ(batch.union_rw_self.ToDense()(0, 0), 1.0f);
}

TEST(GraphBatchDeathTest, GlobalIdOutOfFeatureRangeAborts) {
  bn::Subgraph sg;
  sg.nodes = {99};
  sg.num_targets = 1;
  sg.local = {{99, 0}};
  EXPECT_DEATH(MakeGraphBatch(sg, la::Matrix(20, 2)), "CHECK failed");
}

}  // namespace
}  // namespace turbo::gnn
