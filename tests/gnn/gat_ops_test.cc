#include "gnn/gat_ops.h"

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"

namespace turbo::gnn {
namespace {

using ag::Constant;
using ag::Param;
using ag::Tensor;
using la::Matrix;

la::SparseMatrix TriangleWithSelf() {
  // 3-node triangle plus self loops (unit structure values).
  std::vector<la::Triplet> t;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) t.push_back({i, j, 1.0f});
  }
  return la::SparseMatrix::FromTriplets(3, 3, t);
}

TEST(GatOpsTest, UniformScoresGiveMeanAggregation) {
  auto st = TriangleWithSelf();
  Tensor h = Constant(Matrix::FromRows({{3, 0}, {0, 3}, {3, 3}}));
  Tensor s = Constant(Matrix(3, 1, 0.0f));
  Tensor d = Constant(Matrix(3, 1, 0.0f));
  Tensor out = GatAggregate(st, h, s, d);
  // alpha uniform = 1/3 -> out = column means.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(out->value(i, 0), 2.0f, 1e-5f);
    EXPECT_NEAR(out->value(i, 1), 2.0f, 1e-5f);
  }
}

TEST(GatOpsTest, LargeDstScoreDominates) {
  auto st = TriangleWithSelf();
  Tensor h = Constant(Matrix::FromRows({{1, 0}, {5, 0}, {9, 0}}));
  Tensor s = Constant(Matrix(3, 1, 0.0f));
  // Node 1 has overwhelming destination score.
  Tensor d = Constant(Matrix::FromRows({{0}, {50}, {0}}));
  Tensor out = GatAggregate(st, h, s, d);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(out->value(i, 0), 5.0f, 1e-3f);
}

TEST(GatOpsTest, RowsWithoutEdgesYieldZero) {
  auto st = la::SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}});
  Tensor h = Constant(Matrix::FromRows({{7, 7}, {9, 9}}));
  Tensor s = Constant(Matrix(2, 1, 0.0f));
  Tensor d = Constant(Matrix(2, 1, 0.0f));
  Tensor out = GatAggregate(st, h, s, d);
  EXPECT_FLOAT_EQ(out->value(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(out->value(1, 0), 0.0f);
}

TEST(GatOpsTest, GradientsMatchNumerical) {
  Rng rng(3);
  auto st = TriangleWithSelf();
  Tensor h = Param(Matrix::Randn(3, 4, &rng, 0.7f), "h");
  Tensor s = Param(Matrix::Randn(3, 1, &rng, 0.5f), "s");
  Tensor d = Param(Matrix::Randn(3, 1, &rng, 0.5f), "d");
  Tensor pick = Constant(Matrix::Randn(3, 4, &rng));
  auto res = ag::CheckGradients({h, s, d}, [&] {
    return ag::Sum(ag::Mul(GatAggregate(st, h, s, d), pick));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(GatOpsTest, GradientsMatchNumericalIrregularStructure) {
  Rng rng(4);
  // Asymmetric neighborhoods with self loops.
  std::vector<la::Triplet> t = {{0, 0, 1}, {0, 1, 1}, {1, 1, 1},
                                {2, 2, 1}, {2, 0, 1}, {2, 1, 1},
                                {3, 3, 1}};
  auto st = la::SparseMatrix::FromTriplets(4, 4, t);
  Tensor h = Param(Matrix::Randn(4, 3, &rng, 0.7f), "h");
  Tensor s = Param(Matrix::Randn(4, 1, &rng, 0.5f), "s");
  Tensor d = Param(Matrix::Randn(4, 1, &rng, 0.5f), "d");
  Tensor pick = Constant(Matrix::Randn(4, 3, &rng));
  auto res = ag::CheckGradients({h, s, d}, [&] {
    return ag::Sum(ag::Mul(GatAggregate(st, h, s, d), pick));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(GatOpsTest, AttentionThroughUpstreamParams) {
  // Full GAT head pattern: h = XW, s = h a_s, d = h a_d. Gradients must
  // flow back into W and the attention vectors.
  Rng rng(5);
  auto st = TriangleWithSelf();
  Tensor x = Constant(Matrix::Randn(3, 5, &rng));
  Tensor w = Param(Matrix::Randn(5, 4, &rng, 0.4f), "w");
  Tensor a_src = Param(Matrix::Randn(4, 1, &rng, 0.4f), "a_src");
  Tensor a_dst = Param(Matrix::Randn(4, 1, &rng, 0.4f), "a_dst");
  Tensor pick = Constant(Matrix::Randn(3, 4, &rng));
  auto res = ag::CheckGradients({w, a_src, a_dst}, [&] {
    Tensor hw = ag::MatMul(x, w);
    Tensor s = ag::MatMul(hw, a_src);
    Tensor d = ag::MatMul(hw, a_dst);
    return ag::Sum(ag::Mul(GatAggregate(st, hw, s, d), pick));
  });
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace turbo::gnn
