#include "storage/edge_store.h"

#include <gtest/gtest.h>

namespace turbo::storage {
namespace {

TEST(EdgeStoreTest, AddWeightCreatesSymmetricEdge) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 0.25f, 100);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 0.25f);
  EXPECT_FLOAT_EQ(store.Weight(0, 2, 1), 0.25f);
  EXPECT_EQ(store.NumEdges(0), 1u);
}

TEST(EdgeStoreTest, WeightsAccumulate) {
  EdgeStore store;
  store.AddWeight(3, 1, 2, 0.25f, 100);
  store.AddWeight(3, 2, 1, 0.20f, 200);
  EXPECT_FLOAT_EQ(store.Weight(3, 1, 2), 0.45f);
  EXPECT_EQ(store.NumEdges(3), 1u);  // still one undirected edge
}

TEST(EdgeStoreTest, TypesAreIndependent) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, 0);
  store.AddWeight(1, 1, 2, 2.0f, 0);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 1.0f);
  EXPECT_FLOAT_EQ(store.Weight(1, 1, 2), 2.0f);
  EXPECT_FLOAT_EQ(store.Weight(2, 1, 2), 0.0f);
  EXPECT_EQ(store.TotalEdges(), 2u);
}

TEST(EdgeStoreTest, NeighborsAndDegrees) {
  EdgeStore store;
  store.AddWeight(0, 5, 6, 0.5f, 0);
  store.AddWeight(0, 5, 7, 1.5f, 0);
  EXPECT_EQ(store.Neighbors(0, 5).size(), 2u);
  EXPECT_DOUBLE_EQ(store.WeightedDegree(0, 5), 2.0);
  EXPECT_DOUBLE_EQ(store.WeightedDegree(0, 6), 0.5);
  EXPECT_TRUE(store.Neighbors(0, 99).empty());
}

TEST(EdgeStoreTest, TtlExpiryRemovesStaleEdges) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, /*now=*/100);
  store.AddWeight(0, 3, 4, 1.0f, /*now=*/500);
  size_t removed = store.ExpireBefore(/*cutoff=*/300);
  EXPECT_EQ(removed, 1u);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 0.0f);
  EXPECT_FLOAT_EQ(store.Weight(0, 3, 4), 1.0f);
  EXPECT_EQ(store.NumEdges(0), 1u);
}

TEST(EdgeStoreTest, RefreshedEdgeSurvivesExpiry) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, 100);
  store.AddWeight(0, 1, 2, 1.0f, 400);  // refresh
  EXPECT_EQ(store.ExpireBefore(300), 0u);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 2.0f);
}

TEST(EdgeStoreTest, ConnectedUsers) {
  EdgeStore store;
  store.AddWeight(0, 1, 5, 1.0f, 0);
  store.AddWeight(2, 3, 5, 1.0f, 0);
  auto users = store.ConnectedUsers();
  EXPECT_EQ(users, (std::vector<UserId>{1, 3, 5}));
}

TEST(EdgeStoreDeathTest, RejectsSelfLoopAndBadType) {
  EdgeStore store;
  EXPECT_DEATH(store.AddWeight(0, 1, 1, 1.0f, 0), "CHECK failed");
  EXPECT_DEATH(store.AddWeight(-1, 1, 2, 1.0f, 0), "CHECK failed");
  EXPECT_DEATH(store.AddWeight(kNumEdgeTypes, 1, 2, 1.0f, 0),
               "CHECK failed");
  EXPECT_DEATH(store.AddWeight(0, 1, 2, 0.0f, 0), "CHECK failed");
}

TEST(EdgeStoreDeathTest, RejectsWrappedNegativeIds) {
  // Regression: a negative int cast to UserId wraps past 2^31; before the
  // AddWeight guard this drove EnsureSize into a multi-gigabyte resize
  // instead of an abort.
  EdgeStore store;
  EXPECT_DEATH(store.AddWeight(0, static_cast<UserId>(-1), 1, 1.0f, 0),
               "CHECK failed");
  EXPECT_DEATH(store.AddWeight(0, 1, static_cast<UserId>(-7), 1.0f, 0),
               "CHECK failed");
}

TEST(EdgeStoreTest, SerializeRoundTripsExactly) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 0.25f, 100);
  store.AddWeight(0, 1, 2, 1.0f / 3.0f, 200);
  store.AddWeight(2, 5, 7, 0.125f, 300);
  BinaryWriter w;
  store.Serialize(&w);
  BinaryReader r(w.data());
  EdgeStore restored;
  ASSERT_TRUE(restored.Deserialize(&r, /*num_users=*/8).ok());
  EXPECT_EQ(restored.TotalEdges(), 2u);
  // Exact double bits, not re-accumulated floats.
  EXPECT_EQ(restored.Neighbors(0, 1).at(2).weight,
            store.Neighbors(0, 1).at(2).weight);
  EXPECT_EQ(restored.Neighbors(0, 1).at(2).last_update, 200);
  EXPECT_EQ(restored.Neighbors(2, 5).at(7).weight,
            store.Neighbors(2, 5).at(7).weight);
}

TEST(EdgeStoreTest, DeserializeRejectsEndpointBeyondBound) {
  // Regression: a CRC-valid but corrupt record with a uid near 2^32 must
  // return InvalidArgument, not drive EnsureSize into a multi-billion-row
  // adjacency resize.
  BinaryWriter w;
  w.U64(1);  // type 0: one edge
  w.U32(3000000000u);
  w.U32(1);
  w.F64(1.0);
  w.I64(0);
  for (int t = 1; t < kNumEdgeTypes; ++t) w.U64(0);
  BinaryReader r(w.data());
  EdgeStore store;
  const Status s = store.Deserialize(&r, /*num_users=*/64);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EdgeStoreTest, DeserializeRejectsEndpointJustPastBound) {
  BinaryWriter w;
  w.U64(1);
  w.U32(1);
  w.U32(64);  // == num_users, first out-of-range id
  w.F64(1.0);
  w.I64(0);
  for (int t = 1; t < kNumEdgeTypes; ++t) w.U64(0);
  BinaryReader r(w.data());
  EdgeStore store;
  EXPECT_FALSE(store.Deserialize(&r, /*num_users=*/64).ok());
}

TEST(EdgeStoreTest, ExpiryCountsEachUndirectedEdgeOnce) {
  EdgeStore store;
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) {
      store.AddWeight(0, u, v, 1.0f, 10);
    }
  }
  EXPECT_EQ(store.NumEdges(0), 6u);
  EXPECT_EQ(store.ExpireBefore(100), 6u);
  EXPECT_EQ(store.NumEdges(0), 0u);
}

}  // namespace
}  // namespace turbo::storage
