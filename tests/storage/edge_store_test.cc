#include "storage/edge_store.h"

#include <gtest/gtest.h>

namespace turbo::storage {
namespace {

TEST(EdgeStoreTest, AddWeightCreatesSymmetricEdge) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 0.25f, 100);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 0.25f);
  EXPECT_FLOAT_EQ(store.Weight(0, 2, 1), 0.25f);
  EXPECT_EQ(store.NumEdges(0), 1u);
}

TEST(EdgeStoreTest, WeightsAccumulate) {
  EdgeStore store;
  store.AddWeight(3, 1, 2, 0.25f, 100);
  store.AddWeight(3, 2, 1, 0.20f, 200);
  EXPECT_FLOAT_EQ(store.Weight(3, 1, 2), 0.45f);
  EXPECT_EQ(store.NumEdges(3), 1u);  // still one undirected edge
}

TEST(EdgeStoreTest, TypesAreIndependent) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, 0);
  store.AddWeight(1, 1, 2, 2.0f, 0);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 1.0f);
  EXPECT_FLOAT_EQ(store.Weight(1, 1, 2), 2.0f);
  EXPECT_FLOAT_EQ(store.Weight(2, 1, 2), 0.0f);
  EXPECT_EQ(store.TotalEdges(), 2u);
}

TEST(EdgeStoreTest, NeighborsAndDegrees) {
  EdgeStore store;
  store.AddWeight(0, 5, 6, 0.5f, 0);
  store.AddWeight(0, 5, 7, 1.5f, 0);
  EXPECT_EQ(store.Neighbors(0, 5).size(), 2u);
  EXPECT_DOUBLE_EQ(store.WeightedDegree(0, 5), 2.0);
  EXPECT_DOUBLE_EQ(store.WeightedDegree(0, 6), 0.5);
  EXPECT_TRUE(store.Neighbors(0, 99).empty());
}

TEST(EdgeStoreTest, TtlExpiryRemovesStaleEdges) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, /*now=*/100);
  store.AddWeight(0, 3, 4, 1.0f, /*now=*/500);
  size_t removed = store.ExpireBefore(/*cutoff=*/300);
  EXPECT_EQ(removed, 1u);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 0.0f);
  EXPECT_FLOAT_EQ(store.Weight(0, 3, 4), 1.0f);
  EXPECT_EQ(store.NumEdges(0), 1u);
}

TEST(EdgeStoreTest, RefreshedEdgeSurvivesExpiry) {
  EdgeStore store;
  store.AddWeight(0, 1, 2, 1.0f, 100);
  store.AddWeight(0, 1, 2, 1.0f, 400);  // refresh
  EXPECT_EQ(store.ExpireBefore(300), 0u);
  EXPECT_FLOAT_EQ(store.Weight(0, 1, 2), 2.0f);
}

TEST(EdgeStoreTest, ConnectedUsers) {
  EdgeStore store;
  store.AddWeight(0, 1, 5, 1.0f, 0);
  store.AddWeight(2, 3, 5, 1.0f, 0);
  auto users = store.ConnectedUsers();
  EXPECT_EQ(users, (std::vector<UserId>{1, 3, 5}));
}

TEST(EdgeStoreDeathTest, RejectsSelfLoopAndBadType) {
  EdgeStore store;
  EXPECT_DEATH(store.AddWeight(0, 1, 1, 1.0f, 0), "CHECK failed");
  EXPECT_DEATH(store.AddWeight(-1, 1, 2, 1.0f, 0), "CHECK failed");
  EXPECT_DEATH(store.AddWeight(kNumEdgeTypes, 1, 2, 1.0f, 0),
               "CHECK failed");
  EXPECT_DEATH(store.AddWeight(0, 1, 2, 0.0f, 0), "CHECK failed");
}

TEST(EdgeStoreDeathTest, RejectsWrappedNegativeIds) {
  // Regression: a negative int cast to UserId wraps past 2^31; before the
  // AddWeight guard this drove EnsureSize into a multi-gigabyte resize
  // instead of an abort.
  EdgeStore store;
  EXPECT_DEATH(store.AddWeight(0, static_cast<UserId>(-1), 1, 1.0f, 0),
               "CHECK failed");
  EXPECT_DEATH(store.AddWeight(0, 1, static_cast<UserId>(-7), 1.0f, 0),
               "CHECK failed");
}

TEST(EdgeStoreTest, ExpiryCountsEachUndirectedEdgeOnce) {
  EdgeStore store;
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) {
      store.AddWeight(0, u, v, 1.0f, 10);
    }
  }
  EXPECT_EQ(store.NumEdges(0), 6u);
  EXPECT_EQ(store.ExpireBefore(100), 6u);
  EXPECT_EQ(store.NumEdges(0), 0u);
}

}  // namespace
}  // namespace turbo::storage
