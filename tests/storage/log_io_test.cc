#include "storage/log_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace turbo::storage {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(LogIoTest, ParseValidLine) {
  auto log = ParseLogLine("42,IPv4,1234,3600");
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log.value().uid, 42u);
  EXPECT_EQ(log.value().type, BehaviorType::kIpv4);
  EXPECT_EQ(log.value().value, 1234u);
  EXPECT_EQ(log.value().time, 3600);
}

TEST(LogIoTest, ParseTrimsWhitespace) {
  auto log = ParseLogLine(" 1 , DeviceId , 7 , 0 ");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.value().type, BehaviorType::kDeviceId);
}

TEST(LogIoTest, ParseRejectsBadInput) {
  EXPECT_FALSE(ParseLogLine("1,IPv4,2").ok());            // 3 fields
  EXPECT_FALSE(ParseLogLine("1,NoSuchType,2,3").ok());    // bad type
  EXPECT_FALSE(ParseLogLine("x,IPv4,2,3").ok());          // bad uid
  EXPECT_FALSE(ParseLogLine("1,IPv4,0,3").ok());          // reserved value
}

TEST(LogIoTest, TypeNamesRoundTrip) {
  for (int t = 0; t < kNumBehaviorTypes; ++t) {
    const auto bt = static_cast<BehaviorType>(t);
    auto back = BehaviorTypeFromName(std::string(BehaviorTypeName(bt)));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), bt);
  }
  EXPECT_FALSE(BehaviorTypeFromName("ipv4").ok());  // case-sensitive
}

TEST(LogIoTest, WriteThenReadRoundTrips) {
  BehaviorLogList logs = {
      {1, BehaviorType::kDeviceId, 100, 10},
      {2, BehaviorType::kGps100, 200, 20},
      {1, BehaviorType::kWorkplace, 300, 30},
  };
  const auto path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteLogsCsv(logs, path).ok());
  auto back = ReadLogsCsv(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[1], logs[1]);
  std::remove(path.c_str());
}

TEST(LogIoTest, ReadSkipsCommentsAndHeader) {
  const auto path = TempPath("comments.csv");
  {
    std::ofstream out(path);
    out << "uid,type,value,timestamp\n"
        << "# a comment\n"
        << "\n"
        << "5,IMEI,9,100\n";
  }
  auto logs = ReadLogsCsv(path);
  ASSERT_TRUE(logs.ok());
  ASSERT_EQ(logs.value().size(), 1u);
  EXPECT_EQ(logs.value()[0].uid, 5u);
  std::remove(path.c_str());
}

TEST(LogIoTest, ReadReportsLineNumberOnError) {
  const auto path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,IPv4,2,3\n"
        << "oops\n";
  }
  auto logs = ReadLogsCsv(path);
  ASSERT_FALSE(logs.ok());
  EXPECT_NE(logs.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LogIoTest, MissingFileIsNotFound) {
  auto logs = ReadLogsCsv("/nonexistent/nope.csv");
  EXPECT_EQ(logs.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace turbo::storage
