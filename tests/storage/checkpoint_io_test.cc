#include "storage/checkpoint_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace turbo::storage {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripsAllPrimitiveTypes) {
  BinaryWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F32(1.5f);
  w.F64(-2.25);
  w.String("hello");
  BinaryReader r(w.data());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F32(), 1.5f);
  EXPECT_EQ(r.F64(), -2.25);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIoTest, ReadPastEndLatchesStickyFailure) {
  BinaryWriter w;
  w.U32(7);
  BinaryReader r(w.data());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // overruns
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U8(), 0u);  // stays failed
  EXPECT_FALSE(r.ok());
}

TEST(BinaryIoTest, OversizedStringLengthFailsInsteadOfAllocating) {
  BinaryWriter w;
  w.U64(1ull << 60);  // claimed length far past the buffer
  BinaryReader r(w.data());
  EXPECT_EQ(r.String(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Crc32Test, MatchesKnownVector) {
  // IEEE CRC32 of "123456789" is the classic check value 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(data, 0), 0u);
}

TEST(CheckpointIoTest, WriteAndReadBackSections) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  CheckpointWriter writer;
  BinaryWriter a, b;
  a.U32(123);
  b.String("payload-b");
  writer.AddSection("alpha", a);
  writer.AddSection("beta", b);
  ASSERT_TRUE(writer.WriteFile(path).ok());

  auto reader_or = CheckpointReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  const CheckpointReader& reader = reader_or.value();
  ASSERT_TRUE(reader.Has("alpha"));
  ASSERT_TRUE(reader.Has("beta"));
  EXPECT_FALSE(reader.Has("gamma"));
  EXPECT_TRUE(reader.Find("gamma").empty());
  BinaryReader ra(reader.Find("alpha"));
  EXPECT_EQ(ra.U32(), 123u);
  BinaryReader rb(reader.Find("beta"));
  EXPECT_EQ(rb.String(), "payload-b");
}

TEST(CheckpointIoTest, DefaultChainHeaderIsAFullCheckpoint) {
  const std::string path = TempPath("ckpt_chain_default.bin");
  CheckpointWriter writer;
  BinaryWriter a;
  a.U32(1);
  writer.AddSection("alpha", a);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  auto reader_or = CheckpointReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  EXPECT_EQ(reader_or.value().kind(), CheckpointKind::kFull);
  EXPECT_EQ(reader_or.value().covered_seq(), 0u);
  EXPECT_EQ(reader_or.value().parent_seq(), 0u);
}

TEST(CheckpointIoTest, ChainHeaderRoundTrips) {
  const std::string path = TempPath("ckpt_chain.bin");
  CheckpointWriter writer;
  writer.SetChain(CheckpointKind::kDelta, /*covered_seq=*/9,
                  /*parent_seq=*/4);
  BinaryWriter a;
  a.U32(1);
  writer.AddSection("alpha", a);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  // TotalBytes must predict the exact file size — the delta-vs-full
  // heuristic trusts it before writing anything.
  EXPECT_EQ(std::filesystem::file_size(path), writer.TotalBytes());
  auto reader_or = CheckpointReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  EXPECT_EQ(reader_or.value().kind(), CheckpointKind::kDelta);
  EXPECT_EQ(reader_or.value().covered_seq(), 9u);
  EXPECT_EQ(reader_or.value().parent_seq(), 4u);
  BinaryReader ra(reader_or.value().Find("alpha"));
  EXPECT_EQ(ra.U32(), 1u);
}

TEST(CheckpointIoTest, UnknownChainKindIsRejected) {
  const std::string path = TempPath("ckpt_chain_kind.bin");
  CheckpointWriter writer;
  BinaryWriter a;
  a.U32(1);
  writer.AddSection("alpha", a);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  // The kind byte sits right after the 8-byte magic + u32 version.
  auto bytes_or = ReadFileBytes(path);
  ASSERT_TRUE(bytes_or.ok());
  std::string bytes = bytes_or.take();
  bytes[8 + sizeof(uint32_t)] = 7;
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto reader_or = CheckpointReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().ToString().find("kind"), std::string::npos);
}

TEST(CheckpointIoTest, BadMagicIsRejected) {
  const std::string path = TempPath("ckpt_badmagic.bin");
  std::ofstream(path, std::ios::binary) << "NOTACKPT-garbage";
  auto reader_or = CheckpointReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointIoTest, MissingFileIsNotFound) {
  auto reader_or = CheckpointReader::Open(TempPath("no_such_ckpt.bin"));
  ASSERT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointIoTest, FlippedPayloadByteFailsCrc) {
  const std::string path = TempPath("ckpt_corrupt.bin");
  CheckpointWriter writer;
  BinaryWriter payload;
  for (int i = 0; i < 64; ++i) payload.U32(i);
  writer.AddSection("data", payload);
  ASSERT_TRUE(writer.WriteFile(path).ok());

  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() - 10] ^= 0x40;  // bit-flip inside payload
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());

  auto reader_or = CheckpointReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().message().find("CRC"), std::string::npos);
}

TEST(CheckpointIoTest, TruncatedFileFailsCleanly) {
  const std::string path = TempPath("ckpt_truncated.bin");
  CheckpointWriter writer;
  BinaryWriter payload;
  for (int i = 0; i < 64; ++i) payload.U64(i);
  writer.AddSection("data", payload);
  ASSERT_TRUE(writer.WriteFile(path).ok());

  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path,
                      std::string_view(bytes.value())
                          .substr(0, bytes.value().size() / 2))
          .ok());

  auto reader_or = CheckpointReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_EQ(reader_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointIoTest, AtomicWriteLeavesNoTempFileBehind) {
  const std::string path = TempPath("ckpt_atomic.bin");
  CheckpointWriter writer;
  BinaryWriter payload;
  payload.U8(1);
  writer.AddSection("one", payload);
  ASSERT_TRUE(writer.WriteFile(path).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace turbo::storage
