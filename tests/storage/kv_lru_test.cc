#include <string>

#include <gtest/gtest.h>

#include "storage/kv_store.h"
#include "storage/lru_cache.h"

namespace turbo::storage {
namespace {

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore<int, std::string> kv;
  kv.Put(1, "one");
  auto v = kv.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_FALSE(kv.Get(2).has_value());
  EXPECT_TRUE(kv.Contains(1));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStoreTest, OverwriteReplacesValue) {
  KvStore<int, int> kv;
  kv.Put(1, 10);
  kv.Put(1, 20);
  EXPECT_EQ(*kv.Get(1), 20);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStoreTest, ChargesClock) {
  KvStore<int, int> kv(MediumCost{200.0, 5.0});
  kv.Put(1, 10);
  SimClock clock;
  kv.Get(1, &clock);
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 205.0);
  kv.Get(2, &clock);  // miss: overhead only
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 405.0);
}

TEST(LruCacheTest, GetMissThenHit) {
  LruCache<int, int> cache(2);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, 11);
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Get(1);       // 1 is now most recent
  cache.Put(3, 33);   // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 11);
  cache.Put(2, 22);
  cache.Put(1, 111);  // overwrite refreshes 1
  cache.Put(3, 33);   // evicts 2
  EXPECT_EQ(*cache.Get(1), 111);
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, HitRate) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(9);
  EXPECT_NEAR(cache.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(LruCacheTest, CapacityNeverExceeded) {
  LruCache<int, int> cache(3);
  for (int i = 0; i < 100; ++i) cache.Put(i, i);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 97);
}

TEST(LruCacheTest, CacheIsCheaperThanSql) {
  LruCache<int, int> cache(4);
  KvStore<int, int> db(MediumCost::NetworkedSql());
  db.Put(1, 42);
  SimClock cold, warm;
  // Cold path: miss + db + backfill.
  auto hit = cache.Get(1, &cold);
  EXPECT_FALSE(hit.has_value());
  auto v = db.Get(1, &cold);
  cache.Put(1, *v, &cold);
  // Warm path: hit only.
  EXPECT_TRUE(cache.Get(1, &warm).has_value());
  EXPECT_GT(cold.ElapsedMicros(), 5.0 * warm.ElapsedMicros());
}

}  // namespace
}  // namespace turbo::storage
