#include "storage/sim_clock.h"

#include <gtest/gtest.h>

namespace turbo::storage {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 0.0);
  EXPECT_EQ(clock.queries(), 0);
  EXPECT_EQ(clock.rows(), 0);
}

TEST(SimClockTest, ChargeQueryAccumulates) {
  SimClock clock;
  MediumCost cost{100.0, 2.0};
  clock.ChargeQuery(cost, 10);
  clock.ChargeQuery(cost, 0);
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 100 + 20 + 100);
  EXPECT_EQ(clock.queries(), 2);
  EXPECT_EQ(clock.rows(), 10);
}

TEST(SimClockTest, UnitConversions) {
  SimClock clock;
  clock.ChargeMicros(2.5e6);
  EXPECT_DOUBLE_EQ(clock.ElapsedMillis(), 2500.0);
  EXPECT_DOUBLE_EQ(clock.ElapsedSeconds(), 2.5);
}

TEST(SimClockTest, ResetClears) {
  SimClock clock;
  clock.ChargeQuery(MediumCost::NetworkedSql(), 100);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 0.0);
  EXPECT_EQ(clock.queries(), 0);
}

TEST(SimClockTest, MediaHaveSensibleOrdering) {
  // A 1000-row scan should be much cheaper on the in-memory medium.
  SimClock sql, redis;
  sql.ChargeQuery(MediumCost::NetworkedSql(), 1000);
  redis.ChargeQuery(MediumCost::InMemoryCache(), 1000);
  EXPECT_GT(sql.ElapsedMicros(), 10.0 * redis.ElapsedMicros());
}

TEST(SimClockDeathTest, NegativeChargesRejected) {
  SimClock clock;
  EXPECT_DEATH(clock.ChargeQuery(MediumCost::Free(), -1), "CHECK failed");
  EXPECT_DEATH(clock.ChargeMicros(-0.5), "CHECK failed");
}

}  // namespace
}  // namespace turbo::storage
