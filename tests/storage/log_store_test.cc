#include "storage/log_store.h"

#include <gtest/gtest.h>

namespace turbo::storage {
namespace {

using turbo::BehaviorLog;
using turbo::BehaviorType;

BehaviorLog L(UserId u, BehaviorType t, ValueId v, SimTime time) {
  return BehaviorLog{u, t, v, time};
}

TEST(LogStoreTest, AppendAndSize) {
  LogStore store;
  EXPECT_EQ(store.size(), 0u);
  store.Append(L(1, BehaviorType::kIpv4, 100, 10));
  store.Append(L(2, BehaviorType::kIpv4, 100, 20));
  EXPECT_EQ(store.size(), 2u);
}

TEST(LogStoreTest, QueryUserTimeRange) {
  LogStore store;
  for (SimTime t = 0; t < 10; ++t) {
    store.Append(L(7, BehaviorType::kDeviceId, 1, t * 100));
  }
  auto logs = store.QueryUser(7, 250, 650);
  ASSERT_EQ(logs.size(), 4u);  // 300, 400, 500, 600
  EXPECT_EQ(logs.front().time, 300);
  EXPECT_EQ(logs.back().time, 600);
}

TEST(LogStoreTest, QueryUserInclusiveBounds) {
  LogStore store;
  store.Append(L(1, BehaviorType::kIpv4, 5, 100));
  store.Append(L(1, BehaviorType::kIpv4, 5, 200));
  auto logs = store.QueryUser(1, 100, 200);
  EXPECT_EQ(logs.size(), 2u);
}

TEST(LogStoreTest, QueryUnknownUserIsEmpty) {
  LogStore store;
  EXPECT_TRUE(store.QueryUser(99, 0, 1000).empty());
}

TEST(LogStoreTest, OutOfOrderAppendsAreSortedOnRead) {
  LogStore store;
  store.Append(L(1, BehaviorType::kIpv4, 5, 300));
  store.Append(L(1, BehaviorType::kIpv4, 5, 100));
  store.Append(L(1, BehaviorType::kIpv4, 5, 200));
  auto logs = store.QueryUser(1, 0, 1000);
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0].time, 100);
  EXPECT_EQ(logs[2].time, 300);
}

TEST(LogStoreTest, QueryValueGroupsUsers) {
  LogStore store;
  store.Append(L(1, BehaviorType::kWifiMac, 42, 10));
  store.Append(L(2, BehaviorType::kWifiMac, 42, 20));
  store.Append(L(3, BehaviorType::kWifiMac, 43, 30));   // other value
  store.Append(L(4, BehaviorType::kIpv4, 42, 40));      // other type
  auto obs = store.QueryValue(BehaviorType::kWifiMac, 42, 0, 100);
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].uid, 1u);
  EXPECT_EQ(obs[1].uid, 2u);
}

TEST(LogStoreTest, QueryValueRespectsTimeRange) {
  LogStore store;
  for (SimTime t = 0; t < 5; ++t) {
    store.Append(L(static_cast<UserId>(t), BehaviorType::kGps100, 9, t * 10));
  }
  auto obs = store.QueryValue(BehaviorType::kGps100, 9, 15, 35);
  ASSERT_EQ(obs.size(), 2u);  // t=20, t=30
}

TEST(LogStoreTest, ActiveValuesFindsTouchedKeys) {
  LogStore store;
  store.Append(L(1, BehaviorType::kIpv4, 100, 50));
  store.Append(L(2, BehaviorType::kImei, 200, 500));
  auto active = store.ActiveValues(0, 100);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].value, 100u);
  EXPECT_EQ(active[0].type, BehaviorType::kIpv4);
  EXPECT_EQ(store.ActiveValues(600, 700).size(), 0u);
}

TEST(LogStoreTest, UsersListsAllUsersSorted) {
  LogStore store;
  store.Append(L(5, BehaviorType::kIpv4, 1, 0));
  store.Append(L(2, BehaviorType::kIpv4, 1, 0));
  store.Append(L(5, BehaviorType::kImei, 2, 0));
  auto users = store.Users();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 2u);
  EXPECT_EQ(users[1], 5u);
}

TEST(LogStoreTest, ChargesSimClockPerQueryAndRow) {
  LogStore store(MediumCost{100.0, 10.0});
  for (int i = 0; i < 5; ++i) {
    store.Append(L(1, BehaviorType::kIpv4, 7, i * 10));
  }
  SimClock clock;
  store.QueryUser(1, 0, 100, &clock);
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 100.0 + 10.0 * 5);
  EXPECT_EQ(clock.queries(), 1);
  EXPECT_EQ(clock.rows(), 5);
}

TEST(LogStoreTest, BehaviorTypeHelpers) {
  EXPECT_EQ(BehaviorTypeName(BehaviorType::kDeviceId), "DeviceId");
  EXPECT_EQ(EdgeTypeIndex(BehaviorType::kDeviceId), 0);
  EXPECT_EQ(EdgeTypeIndex(BehaviorType::kGps), -1);   // raw GPS not an edge
  EXPECT_EQ(EdgeTypeIndex(BehaviorType::kGps100), 5);
  EXPECT_EQ(kNumEdgeTypes, 8);
}

}  // namespace
}  // namespace turbo::storage
