// ShipWalDir contract (DESIGN.md §14): each call makes the replica
// directory a consistent prefix-copy of the primary's durability
// directory with incremental work only. The edge cases the standby
// protocol leans on — a torn final segment mid-ship, a re-shipped
// duplicate, checkpoint rotation deletes — are pinned here at the file
// level; tests/server/warm_standby_test.cc covers the replay side.
#include "storage/wal_ship.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/wal.h"
#include "util/time_util.h"

namespace turbo::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

WalOptions NoFsync() {
  WalOptions o;
  o.fsync = WalOptions::Fsync::kNever;
  o.group_commit_records = 1;  // every Append hits the file
  return o;
}

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, BehaviorType::kIpv4, v, t};
}

/// Writes `n` ingest records into segment `seq` of `dir` and closes it.
void WriteSegment(const std::string& dir, uint64_t seq, int n) {
  WalWriter w;
  ASSERT_TRUE(w.Open(dir, seq, NoFsync()).ok());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(w.Append(WalRecord::Ingest(L(i, 100 + i, i * kMinute))).ok());
  }
  ASSERT_TRUE(w.Close().ok());
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(WalShipTest, FirstShipCopiesEverything) {
  const std::string src = FreshDir("ship_first_src");
  const std::string dst = FreshDir("ship_first_dst");
  WriteSegment(src, 1, 5);
  WriteSegment(src, 2, 3);
  WriteBytes(src + "/checkpoint.bin", "fake-checkpoint-bytes");

  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().message();
  const WalShipStats& stats = stats_or.value();
  EXPECT_EQ(stats.segments_created, 2u);
  EXPECT_EQ(stats.checkpoint_files_copied, 1u);
  EXPECT_EQ(stats.max_segment_seq, 2u);
  EXPECT_GT(stats.segment_bytes_appended, 0u);

  // Byte-identical copies, parseable as clean segments.
  EXPECT_EQ(ReadBytes(WalSegmentPath(dst, 1)), ReadBytes(WalSegmentPath(src, 1)));
  EXPECT_EQ(ReadBytes(dst + "/checkpoint.bin"), "fake-checkpoint-bytes");
  auto seg_or = ReadWalSegment(WalSegmentPath(dst, 2));
  ASSERT_TRUE(seg_or.ok());
  EXPECT_FALSE(seg_or.value().torn);
  EXPECT_EQ(seg_or.value().records.size(), 3u);
}

TEST(WalShipTest, ReshipOfUnchangedSourceIsANoOp) {
  const std::string src = FreshDir("ship_dup_src");
  const std::string dst = FreshDir("ship_dup_dst");
  WriteSegment(src, 1, 4);
  WriteBytes(src + "/checkpoint.bin", "ckpt-v1");
  ASSERT_TRUE(ShipWalDir(src, dst).ok());
  const std::string before = ReadBytes(WalSegmentPath(dst, 1));

  // Shipping the same files again must move no bytes — this is what
  // makes a re-shipped duplicate segment harmless to the standby.
  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().segments_created, 0u);
  EXPECT_EQ(stats_or.value().segment_bytes_appended, 0u);
  EXPECT_EQ(stats_or.value().checkpoint_files_copied, 0u);
  EXPECT_EQ(stats_or.value().files_deleted, 0u);
  EXPECT_EQ(ReadBytes(WalSegmentPath(dst, 1)), before);
}

TEST(WalShipTest, GrowingSegmentShipsOnlyTheNewTail) {
  const std::string src = FreshDir("ship_tail_src");
  const std::string dst = FreshDir("ship_tail_dst");
  WalWriter w;
  ASSERT_TRUE(w.Open(src, 1, NoFsync()).ok());
  ASSERT_TRUE(w.Append(WalRecord::Ingest(L(1, 101, kMinute))).ok());
  ASSERT_TRUE(w.Flush().ok());
  ASSERT_TRUE(ShipWalDir(src, dst).ok());

  ASSERT_TRUE(w.Append(WalRecord::Ingest(L(2, 102, 2 * kMinute))).ok());
  ASSERT_TRUE(w.Append(WalRecord::Advance(kHour)).ok());
  ASSERT_TRUE(w.Flush().ok());
  const size_t grown = static_cast<size_t>(fs::file_size(WalSegmentPath(src, 1)));
  const size_t before = static_cast<size_t>(fs::file_size(WalSegmentPath(dst, 1)));

  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().segments_created, 0u);
  EXPECT_EQ(stats_or.value().segment_bytes_appended, grown - before);
  auto seg_or = ReadWalSegment(WalSegmentPath(dst, 1));
  ASSERT_TRUE(seg_or.ok());
  EXPECT_EQ(seg_or.value().records.size(), 3u);
  ASSERT_TRUE(w.Close().ok());
}

TEST(WalShipTest, TornFinalSegmentShipsAsIsAndCompletesLater) {
  const std::string src = FreshDir("ship_torn_src");
  const std::string dst = FreshDir("ship_torn_dst");
  WriteSegment(src, 1, 4);
  const std::string full = ReadBytes(WalSegmentPath(src, 1));
  // Freeze the primary mid-append: cut into the last record's framing.
  fs::resize_file(WalSegmentPath(src, 1), full.size() - 3);

  ASSERT_TRUE(ShipWalDir(src, dst).ok());
  auto torn_or = ReadWalSegment(WalSegmentPath(dst, 1));
  ASSERT_TRUE(torn_or.ok());
  // The replica sees exactly what the primary's disk holds: the valid
  // 3-record prefix plus a torn tail. The shipper must NOT truncate it.
  EXPECT_TRUE(torn_or.value().torn);
  EXPECT_EQ(torn_or.value().records.size(), 3u);
  EXPECT_EQ(static_cast<size_t>(fs::file_size(WalSegmentPath(dst, 1))),
            full.size() - 3);

  // The primary finishes the write; the next ship appends the missing
  // bytes and the very same replica file becomes a clean segment.
  WriteBytes(WalSegmentPath(src, 1), full);
  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().segment_bytes_appended, 3u);
  auto seg_or = ReadWalSegment(WalSegmentPath(dst, 1));
  ASSERT_TRUE(seg_or.ok());
  EXPECT_FALSE(seg_or.value().torn);
  EXPECT_EQ(seg_or.value().records.size(), 4u);
  EXPECT_EQ(ReadBytes(WalSegmentPath(dst, 1)), full);
}

TEST(WalShipTest, ShrunkenSourceSegmentIsRecopiedWholesale) {
  const std::string src = FreshDir("ship_shrunk_src");
  const std::string dst = FreshDir("ship_shrunk_dst");
  WriteSegment(src, 1, 4);
  ASSERT_TRUE(ShipWalDir(src, dst).ok());
  // Recovery on the primary truncated a torn tail before this standby
  // attached — the source is now shorter than the replica.
  const std::string full = ReadBytes(WalSegmentPath(src, 1));
  auto seg_or = ReadWalSegment(WalSegmentPath(src, 1));
  ASSERT_TRUE(seg_or.ok());
  fs::resize_file(WalSegmentPath(src, 1), full.size() - 20);
  ASSERT_TRUE(TruncateWalSegment(WalSegmentPath(src, 1),
                                 ReadWalSegment(WalSegmentPath(src, 1))
                                     .value()
                                     .valid_bytes)
                  .ok());

  ASSERT_TRUE(ShipWalDir(src, dst).ok());
  EXPECT_EQ(ReadBytes(WalSegmentPath(dst, 1)),
            ReadBytes(WalSegmentPath(src, 1)));
}

TEST(WalShipTest, MirrorDeletesFollowCheckpointRotation) {
  const std::string src = FreshDir("ship_rot_src");
  const std::string dst = FreshDir("ship_rot_dst");
  WriteSegment(src, 1, 2);
  WriteSegment(src, 2, 2);
  WriteSegment(src, 3, 2);
  ASSERT_TRUE(ShipWalDir(src, dst).ok());
  ASSERT_EQ(ListWalSegments(dst).size(), 3u);

  // Checkpoint rotation on the primary: covered segments deleted, a new
  // checkpoint written.
  fs::remove(WalSegmentPath(src, 1));
  fs::remove(WalSegmentPath(src, 2));
  WriteBytes(src + "/checkpoint.bin", "ckpt-covering-1-2");

  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().files_deleted, 2u);
  EXPECT_EQ(stats_or.value().checkpoint_files_copied, 1u);
  EXPECT_EQ(ListWalSegments(dst), std::vector<uint64_t>{3});
  EXPECT_TRUE(fs::exists(dst + "/checkpoint.bin"));

  // Without mirror deletes the replica keeps the old files (an archive
  // posture), but the live files still ship.
  const std::string dst2 = FreshDir("ship_rot_dst2");
  WalShipOptions keep;
  keep.mirror_deletes = false;
  WriteSegment(src, 4, 1);
  ASSERT_TRUE(ShipWalDir(src, dst2, keep).ok());
  fs::remove(WalSegmentPath(src, 3));
  ASSERT_TRUE(ShipWalDir(src, dst2, keep).ok());
  EXPECT_EQ(ListWalSegments(dst2).size(), 2u);  // 3 kept, 4 live
}

TEST(WalShipTest, GapInSourceSequenceShipsVerbatim) {
  // The shipper is file-level: a source gap (lost segment) ships as a
  // gap. Detecting it is the standby's job — WarmStandby::CatchUp fails
  // loudly on non-consecutive sequence numbers.
  const std::string src = FreshDir("ship_gap_src");
  const std::string dst = FreshDir("ship_gap_dst");
  WriteSegment(src, 1, 2);
  WriteSegment(src, 3, 2);
  auto stats_or = ShipWalDir(src, dst);
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().segments_created, 2u);
  EXPECT_EQ(ListWalSegments(dst), (std::vector<uint64_t>{1, 3}));
}

TEST(WalShipTest, MissingSourceIsNotFound) {
  const std::string dst = FreshDir("ship_missing_dst");
  auto stats_or = ShipWalDir(testing::TempDir() + "/ship_no_such_src", dst);
  EXPECT_FALSE(stats_or.ok());
  EXPECT_EQ(stats_or.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace turbo::storage
