#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "storage/checkpoint_io.h"

namespace turbo::storage {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BehaviorLog L(UserId u, ValueId v, SimTime t) {
  return BehaviorLog{u, BehaviorType::kIpv4, v, t};
}

TEST(WalTest, RoundTripsIngestAndAdvanceRecords) {
  const std::string dir = FreshDir("wal_roundtrip");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1, {}).ok());
  ASSERT_TRUE(writer.Append(WalRecord::Ingest(L(7, 42, 10))).ok());
  ASSERT_TRUE(writer.Append(WalRecord::Advance(3600)).ok());
  ASSERT_TRUE(writer.Append(WalRecord::Ingest(L(8, 43, 3700))).ok());
  ASSERT_TRUE(writer.Close().ok());

  auto segment_or = ReadWalSegment(WalSegmentPath(dir, 1));
  ASSERT_TRUE(segment_or.ok()) << segment_or.status().ToString();
  const WalSegment& segment = segment_or.value();
  EXPECT_EQ(segment.seq, 1u);
  EXPECT_FALSE(segment.torn);
  ASSERT_EQ(segment.records.size(), 3u);
  EXPECT_EQ(segment.records[0].kind, WalRecord::Kind::kIngest);
  EXPECT_EQ(segment.records[0].log, L(7, 42, 10));
  EXPECT_EQ(segment.records[1].kind, WalRecord::Kind::kAdvance);
  EXPECT_EQ(segment.records[1].advance_to, 3600);
  EXPECT_EQ(segment.records[2].log, L(8, 43, 3700));
}

TEST(WalTest, EmptySegmentHasNoRecordsAndNoTear) {
  const std::string dir = FreshDir("wal_empty");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 3, {}).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto segment_or = ReadWalSegment(WalSegmentPath(dir, 3));
  ASSERT_TRUE(segment_or.ok());
  EXPECT_EQ(segment_or.value().seq, 3u);
  EXPECT_TRUE(segment_or.value().records.empty());
  EXPECT_FALSE(segment_or.value().torn);
}

TEST(WalTest, GroupCommitBuffersUntilThreshold) {
  const std::string dir = FreshDir("wal_group");
  WalOptions options;
  options.fsync = WalOptions::Fsync::kNever;
  options.group_commit_records = 8;
  options.group_commit_bytes = 1 << 20;
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1, options).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        writer.Append(WalRecord::Ingest(L(1, i, i))).ok());
  }
  // Below the threshold: records live in the writer's buffer, not yet in
  // the file (a crash here loses them — that is the kNever contract).
  auto before_or = ReadWalSegment(WalSegmentPath(dir, 1));
  ASSERT_TRUE(before_or.ok());
  EXPECT_TRUE(before_or.value().records.empty());
  ASSERT_TRUE(writer.Flush().ok());
  auto after_or = ReadWalSegment(WalSegmentPath(dir, 1));
  ASSERT_TRUE(after_or.ok());
  EXPECT_EQ(after_or.value().records.size(), 5u);
  ASSERT_TRUE(writer.Close().ok());
}

TEST(WalTest, EveryAppendPolicyIsImmediatelyDurable) {
  const std::string dir = FreshDir("wal_every");
  WalOptions options;
  options.fsync = WalOptions::Fsync::kEveryAppend;
  options.group_commit_records = 1000;
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1, options).ok());
  ASSERT_TRUE(writer.Append(WalRecord::Ingest(L(1, 1, 1))).ok());
  // No Flush/Close: the record must already be on disk.
  auto segment_or = ReadWalSegment(WalSegmentPath(dir, 1));
  ASSERT_TRUE(segment_or.ok());
  EXPECT_EQ(segment_or.value().records.size(), 1u);
  ASSERT_TRUE(writer.Close().ok());
}

TEST(WalTest, TornFinalRecordKeepsValidPrefix) {
  const std::string dir = FreshDir("wal_torn");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1, {}).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(WalRecord::Ingest(L(1, i, i))).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  // Tear the last record mid-payload, as a crash mid-write would.
  const std::string path = WalSegmentPath(dir, 1);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path, std::string_view(bytes.value())
                                .substr(0, bytes.value().size() - 7))
          .ok());

  auto segment_or = ReadWalSegment(path);
  ASSERT_TRUE(segment_or.ok());
  EXPECT_TRUE(segment_or.value().torn);
  EXPECT_EQ(segment_or.value().records.size(), 9u);
  EXPECT_EQ(segment_or.value().records.back().log.value, 8u);

  // valid_bytes marks the end of the record prefix: truncating there
  // removes exactly the torn tail and the segment reads back clean.
  const size_t valid = segment_or.value().valid_bytes;
  EXPECT_LT(valid, segment_or.value().bytes);
  ASSERT_TRUE(TruncateWalSegment(path, valid).ok());
  auto clean_or = ReadWalSegment(path);
  ASSERT_TRUE(clean_or.ok());
  EXPECT_FALSE(clean_or.value().torn);
  EXPECT_EQ(clean_or.value().records.size(), 9u);
  EXPECT_EQ(clean_or.value().bytes, valid);
}

TEST(WalTest, CorruptCrcEndsSegmentAtThatRecord) {
  const std::string dir = FreshDir("wal_crc");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(dir, 1, {}).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.Append(WalRecord::Ingest(L(1, i, i))).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  const std::string path = WalSegmentPath(dir, 1);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() - 30] ^= 0x01;  // flip a bit in record 3
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());

  auto segment_or = ReadWalSegment(path);
  ASSERT_TRUE(segment_or.ok());
  EXPECT_TRUE(segment_or.value().torn);
  EXPECT_LT(segment_or.value().records.size(), 4u);
}

TEST(WalTest, BadHeaderMagicIsAnError) {
  const std::string dir = FreshDir("wal_magic");
  const std::string path = WalSegmentPath(dir, 1);
  std::ofstream(path, std::ios::binary) << "NOTAWAL!xxxxyyyyzzzz";
  auto segment_or = ReadWalSegment(path);
  ASSERT_FALSE(segment_or.ok());
  EXPECT_EQ(segment_or.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, ListWalSegmentsSortsAndIgnoresForeignFiles) {
  const std::string dir = FreshDir("wal_list");
  for (uint64_t seq : {3u, 1u, 12u}) {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(dir, seq, {}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::ofstream(dir + "/checkpoint.bin") << "x";
  std::ofstream(dir + "/wal-junk.log") << "x";
  std::ofstream(dir + "/wal-1.log") << "x";  // missing zero padding
  EXPECT_EQ(ListWalSegments(dir), (std::vector<uint64_t>{1, 3, 12}));
  EXPECT_TRUE(ListWalSegments(dir + "/missing").empty());
}

TEST(WalTest, ListWalSegmentsSeesSeqsWiderThanThePadding) {
  // Regression: sequence numbers past 10^8 outgrow the %08llu padding;
  // a fixed-length name check made them invisible to listing, rotation
  // cleanup, and recovery.
  const std::string dir = FreshDir("wal_wide");
  for (uint64_t seq : {99999999ull, 100000000ull, 123456789012ull}) {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(dir, seq, {}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(ListWalSegments(dir),
            (std::vector<uint64_t>{99999999, 100000000, 123456789012}));
}

TEST(WalTest, ListCheckpointDeltasSortsAndIgnoresForeignFiles) {
  const std::string dir = FreshDir("delta_list");
  for (uint64_t seq : {7u, 2u, 100000000u}) {
    std::ofstream(CheckpointDeltaPath(dir, seq)) << "x";
  }
  std::ofstream(dir + "/checkpoint.bin") << "x";
  std::ofstream(dir + "/wal-00000001.log") << "x";
  std::ofstream(dir + "/checkpoint-delta-junk.bin") << "x";
  std::ofstream(dir + "/checkpoint-delta-2.bin") << "x";  // no padding
  // An interrupted atomic publish leaves a .tmp — never a chain link.
  std::ofstream(dir + "/checkpoint-delta-00000009.bin.tmp") << "x";
  EXPECT_EQ(ListCheckpointDeltas(dir),
            (std::vector<uint64_t>{2, 7, 100000000}));
  EXPECT_TRUE(ListCheckpointDeltas(dir + "/missing").empty());
}

}  // namespace
}  // namespace turbo::storage
