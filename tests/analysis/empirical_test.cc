// Validates that the analysis module reproduces the paper's four Fig. 4
// observations on the synthetic scenario — these tests are the
// quantitative contract between datagen and the paper's empirical study.
#include "analysis/empirical.h"

#include <gtest/gtest.h>

#include "bn/builder.h"

namespace turbo::analysis {
namespace {

class EmpiricalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new datagen::Dataset(
        datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(2000)));
    storage::EdgeStore edges;
    bn::BnConfig cfg;
    cfg.windows = {kHour, 6 * kHour, kDay};
    bn::BnBuilder builder(cfg, &edges);
    builder.BuildFromLogs(ds_->logs);
    bn::SnapshotOptions raw;
    raw.normalize = false;
    net_ = new bn::GraphView(bn::BnSnapshot::Build(
        edges, static_cast<int>(ds_->users.size()), raw));
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete net_;
    ds_ = nullptr;
    net_ = nullptr;
  }
  static datagen::Dataset* ds_;
  static bn::GraphView* net_;
};

datagen::Dataset* EmpiricalTest::ds_ = nullptr;
bn::GraphView* EmpiricalTest::net_ = nullptr;

// Observation 1 (Fig. 4a-b).
TEST_F(EmpiricalTest, FraudActivitySpansAreShort) {
  auto burst = TimeBurst(*ds_);
  EXPECT_GT(burst.normal.num_users, 0);
  EXPECT_GT(burst.fraud.num_users, 0);
  // Medians: warmed fraud accounts legitimately carry long histories.
  EXPECT_LT(burst.fraud.median_span_days * 5,
            burst.normal.median_span_days);
  EXPECT_GT(burst.fraud.frac_logs_within_1d,
            burst.normal.frac_logs_within_1d * 3);
  EXPECT_GE(burst.fraud.frac_logs_within_3d,
            burst.fraud.frac_logs_within_1d);
}

// Observation 2 (Fig. 4c).
TEST_F(EmpiricalTest, FraudPairIntervalsConcentrateShort) {
  auto dist = TemporalAggregation(*ds_, BehaviorType::kDeviceId);
  ASSERT_GT(dist.fraud_pairs, 0);
  ASSERT_GT(dist.normal_pairs, 0);
  // Fraud same-device observations concentrate within the ring burst
  // (application spread 3d + per-user activity halfwidth 1.5d ~ a week);
  // normal same-device pairs (household tablets) spread over months.
  auto mass_within = [](const std::array<double, kNumIntervalBuckets>& h,
                        int last_bucket) {
    double s = 0.0;
    for (int b = 0; b <= last_bucket; ++b) s += h[b];
    return s;
  };
  const double fraud_3d = mass_within(dist.fraud, 3);
  const double normal_3d = mass_within(dist.normal, 3);
  // Campaign-level farm sharing stretches a minority of fraud pairs to
  // ~2 weeks; the bulk stays within a week.
  EXPECT_GT(mass_within(dist.fraud, 4), 0.8);    // within 7 days
  EXPECT_GT(mass_within(dist.fraud, 5), 0.97);   // within 30 days
  EXPECT_LT(mass_within(dist.normal, 4), 0.65);
  EXPECT_GT(fraud_3d, normal_3d + 0.3);
}

TEST_F(EmpiricalTest, IntervalHistogramsNormalized) {
  auto dist = TemporalAggregation(*ds_, BehaviorType::kIpv4);
  double nf = 0, nn = 0;
  for (int b = 0; b < kNumIntervalBuckets; ++b) {
    nf += dist.fraud[b];
    nn += dist.normal[b];
  }
  EXPECT_NEAR(nf, 1.0, 1e-9);
  EXPECT_NEAR(nn, 1.0, 1e-9);
}

// Observation 3 (Fig. 4d).
TEST_F(EmpiricalTest, FraudSeedsHaveFraudRichNeighborhoods) {
  auto series = HopFraudRatio(*net_, ds_->Labels(), 3);
  ASSERT_EQ(series.fraud_seed.size(), 3u);
  // 1-hop fraud ratio around fraudsters far above that around normals.
  EXPECT_GT(series.fraud_seed[0], 10 * (series.normal_seed[0] + 1e-4));
  // Decays with hops for fraud seeds.
  EXPECT_GT(series.fraud_seed[0], series.fraud_seed[2]);
}

// Fig. 4e-g: deterministic types carry stronger homophily than
// probabilistic ones.
TEST_F(EmpiricalTest, PerTypeHomophilyDiffers) {
  auto device = HopFraudRatio(*net_, ds_->Labels(), 2,
                              EdgeTypeIndex(BehaviorType::kDeviceId));
  auto gps = HopFraudRatio(*net_, ds_->Labels(), 2,
                           EdgeTypeIndex(BehaviorType::kGps100));
  EXPECT_GT(device.fraud_seed[0], gps.fraud_seed[0]);
}

// Observation 4 (Fig. 4h-i).
TEST_F(EmpiricalTest, FraudNeighborhoodsHaveHigherDegree) {
  auto plain = HopMeanDegree(*net_, ds_->Labels(), 2, /*weighted=*/false);
  EXPECT_GT(plain.fraud_seed[0], plain.normal_seed[0]);
  auto weighted = HopMeanDegree(*net_, ds_->Labels(), 2, /*weighted=*/true);
  EXPECT_GT(weighted.fraud_seed[0], weighted.normal_seed[0]);
}

TEST_F(EmpiricalTest, HopFrontiersAreDisjointAndExcludeSeed) {
  UserId seed_node = 0;
  auto frontiers = HopFrontiers(*net_, seed_node, 3);
  std::set<UserId> seen = {seed_node};
  for (const auto& frontier : frontiers) {
    for (UserId u : frontier) {
      EXPECT_TRUE(seen.insert(u).second) << "node " << u << " repeated";
    }
  }
}

TEST_F(EmpiricalTest, HopFrontiersRespectEdgeType) {
  // Frontier via a single type must be a subset of the union frontier.
  auto union_f = HopFrontiers(*net_, 1, 1);
  auto typed_f = HopFrontiers(*net_, 1, 1,
                              EdgeTypeIndex(BehaviorType::kIpv4));
  std::set<UserId> union_set(union_f[0].begin(), union_f[0].end());
  for (UserId u : typed_f[0]) EXPECT_TRUE(union_set.count(u));
}

}  // namespace
}  // namespace turbo::analysis
