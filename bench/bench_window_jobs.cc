// Window-job engine study: wall-clock throughput of BN ingestion (the
// hourly/daily jobs of Algorithm 1) across three engine configurations
// over the same skewed log stream and the same job schedule a live
// BnServer would run:
//
//   serial          shards=1, no pool, no bucket reuse — the pre-engine
//                   shape: every window re-scans the raw logs.
//   sharded         shards=8 on a thread pool, no reuse — isolates the
//                   partitioning win (a wash on one core by design).
//   sharded+reuse   the full engine: 2h..12h and 1d jobs merge the
//                   cached 1h buckets, so a day of traffic costs one
//                   log scan plus merges instead of 13 scans.
//
// The engines are bit-identical by contract (DESIGN.md "Ingestion &
// window jobs"); this binary CHECKs exact weight equality across all
// three before reporting. The headline acceptance number: the full
// engine must clear 3x the serial engine's update throughput — on a
// single core that win comes from hierarchical bucket reuse, which is
// thread-count independent.
//
// Writes BENCH_window.json (consumed by scripts/check_bench_regression.py;
// `hardware_threads` recorded so the gate skips on mismatched boxes).
//
//   ./bench_window_jobs [--users=N] [--logs=K] [--days=D] [--rounds=R]
//                       [--out=BENCH_window.json]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bn/builder.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace turbo::benchx {
namespace {

// Community-structured co-occurrence traffic, the shape BN ingestion
// sees in production: small user groups hammer their shared values
// (home Wi-Fi, shared device) many times per hour, plus a thin tail of
// one-off values. Heavy within-hour duplication with small deduped
// buckets is exactly where hierarchical reuse pays: a large window's
// raw scan re-reads every duplicate row, while the merge path only
// touches the (much smaller) per-hour distinct-user buckets.
BehaviorLogList MakeLogs(uint64_t seed, int users, size_t n,
                         SimTime span) {
  const BehaviorType types[] = {BehaviorType::kIpv4, BehaviorType::kImei,
                                BehaviorType::kWifiMac};
  constexpr int kCommunity = 4;           // users per behavior community
  constexpr ValueId kNoiseValues = 65536;  // one-off long-tail values
  Rng rng(seed);
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BehaviorLog log;
    log.uid = static_cast<UserId>(rng.NextUint(users));
    log.type = types[rng.NextUint(3)];
    log.value = rng.NextBool(0.999)
                    ? kNoiseValues + log.uid / kCommunity  // community home
                    : rng.NextZipf(kNoiseValues, 0.5);
    log.time =
        static_cast<SimTime>(rng.NextUint(static_cast<uint64_t>(span)));
    logs.push_back(log);
  }
  return logs;
}

struct EngineSpec {
  std::string name;
  int shards = 1;
  int threads = 0;  // pool size; 0 = no pool (serial shard loop)
  bool reuse = false;
};

struct EngineResult {
  EngineSpec spec;
  double seconds = 0.0;
  size_t updates = 0;
  size_t jobs = 0;
  double updates_per_second = 0.0;
  double speedup = 1.0;  // vs serial
};

/// Runs the full live-server job schedule (every window, every epoch,
/// global epoch-time order, ties to the smaller window) against a
/// pre-indexed LogStore. Returns wall seconds; fills updates/jobs and
/// leaves the built graph in `edges`.
double RunSchedule(const storage::LogStore& store, const bn::BnConfig& cfg,
                   util::ThreadPool* pool, storage::EdgeStore* edges,
                   size_t* updates, size_t* jobs, SimTime cap) {
  bn::BnBuilder builder(cfg, edges);
  builder.SetThreadPool(pool);
  std::vector<SimTime> last_end(cfg.windows.size(), 0);
  *updates = 0;
  *jobs = 0;
  Stopwatch sw;
  for (;;) {
    int best = -1;
    SimTime best_end = 0;
    for (size_t i = 0; i < cfg.windows.size(); ++i) {
      const SimTime next = last_end[i] + cfg.windows[i];
      if (next > cap) continue;
      if (best < 0 || next < best_end) {
        best = static_cast<int>(i);
        best_end = next;
      }
    }
    if (best < 0) break;
    *updates += builder.RunWindowJob(store, cfg.windows[best], best_end);
    last_end[best] = best_end;
    ++*jobs;
    builder.EvictCachedBuckets(
        *std::min_element(last_end.begin(), last_end.end()));
  }
  return sw.ElapsedSeconds();
}

void CheckIdentical(const storage::EdgeStore& a, const storage::EdgeStore& b,
                    int users, const std::string& engine) {
  TURBO_CHECK_EQ(a.TotalEdges(), b.TotalEdges());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
      const auto& an = a.Neighbors(t, u);
      const auto& other = b.Neighbors(t, u);
      TURBO_CHECK_EQ(an.size(), other.size());
      for (const auto& [v, e] : an) {
        auto it = other.find(v);
        TURBO_CHECK(it != other.end());
        TURBO_CHECK_MSG(e.weight == it->second.weight,
                        "engine '" << engine << "' diverged on edge " << u
                                   << "-" << v << " type " << t);
      }
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int users = flags.GetInt("users", 240);
  const size_t num_logs = static_cast<size_t>(flags.GetInt("logs", 6000000));
  const int days = flags.GetInt("days", 2);
  const int rounds = flags.GetInt("rounds", 2);
  const std::string out = flags.GetString("out", "BENCH_window.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  bn::BnConfig base_cfg;  // default hierarchy [1h..12h, 1d]
  base_cfg.max_bucket_users = 64;

  std::printf("== window-job engine: sharding + hierarchical reuse ==\n");
  std::printf(
      "users=%d, logs=%zu over %dd, %zu windows, %d hardware threads\n\n",
      users, num_logs, days, base_cfg.windows.size(), hw);

  const BehaviorLogList logs =
      MakeLogs(0x70b0ULL, users, num_logs, days * kDay);
  storage::LogStore store;
  store.AppendBatch(logs);
  SimTime max_t = 0;
  for (const auto& log : logs) max_t = std::max(max_t, log.time);
  SimTime cap = 0;
  for (SimTime w : base_cfg.windows) {
    cap = std::max(cap, bn::BnBuilder::EpochIndex(max_t, w) * w);
  }

  const std::vector<EngineSpec> specs = {
      {"serial", 1, 0, false},
      {"sharded", 8, hw, false},
      {"sharded+reuse", 8, hw, true},
  };

  // Warmup: one serial pass triggers the log store's lazy per-key sort
  // so every measured round sees the same warm index.
  {
    storage::EdgeStore warm;
    size_t u = 0, j = 0;
    bn::BnConfig cfg = base_cfg;
    cfg.window_job_shards = 1;
    cfg.reuse_base_buckets = false;
    RunSchedule(store, cfg, nullptr, &warm, &u, &j, cap);
  }

  std::vector<EngineResult> results;
  std::unique_ptr<storage::EdgeStore> reference;
  for (const auto& spec : specs) {
    bn::BnConfig cfg = base_cfg;
    cfg.window_job_shards = spec.shards;
    cfg.reuse_base_buckets = spec.reuse;
    std::unique_ptr<util::ThreadPool> pool;
    if (spec.threads > 0 && spec.shards > 1) {
      pool = std::make_unique<util::ThreadPool>(spec.threads);
    }
    EngineResult r;
    r.spec = spec;
    r.seconds = 1e30;
    std::unique_ptr<storage::EdgeStore> built;
    for (int round = 0; round < rounds; ++round) {
      auto edges = std::make_unique<storage::EdgeStore>();
      size_t updates = 0, jobs = 0;
      const double secs = RunSchedule(store, cfg, pool.get(), edges.get(),
                                      &updates, &jobs, cap);
      r.seconds = std::min(r.seconds, secs);  // best-of: least noise
      r.updates = updates;
      r.jobs = jobs;
      built = std::move(edges);
    }
    r.updates_per_second = r.updates / std::max(r.seconds, 1e-9);
    if (reference == nullptr) {
      reference = std::move(built);
    } else {
      CheckIdentical(*reference, *built, users, spec.name);
    }
    results.push_back(r);
  }

  const double serial_ups = results.front().updates_per_second;
  double reuse_speedup = 0.0;
  TablePrinter table({"engine", "shards", "pool", "jobs", "updates",
                      "seconds", "updates/s", "speedup"});
  for (auto& r : results) {
    r.speedup = r.updates_per_second / std::max(serial_ups, 1e-9);
    if (r.spec.reuse) reuse_speedup = std::max(reuse_speedup, r.speedup);
    table.AddRow({r.spec.name, std::to_string(r.spec.shards),
                  std::to_string(r.spec.threads),
                  std::to_string(r.jobs), std::to_string(r.updates),
                  StrFormat("%.3f", r.seconds),
                  StrFormat("%.0f", r.updates_per_second),
                  StrFormat("%.2fx", r.speedup)});
  }
  table.Print();
  std::printf("\nall engines produced bit-identical edge weights\n");
  std::printf("full-engine speedup vs serial: %.2fx (target >= 3x)\n",
              reuse_speedup);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"window_jobs\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"logs\": " << num_logs << ",\n"
    << "  \"days\": " << days << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    f << "    {\"engine\": \"" << r.spec.name
      << "\", \"shards\": " << r.spec.shards
      << ", \"threads\": " << r.spec.threads
      << ", \"reuse\": " << (r.spec.reuse ? "true" : "false")
      << ", \"jobs\": " << r.jobs << ", \"updates\": " << r.updates
      << ", \"seconds\": " << r.seconds
      << ", \"updates_per_second\": " << r.updates_per_second
      << ", \"speedup_vs_serial\": " << r.speedup << "}"
      << (i + 1 < results.size() ? ",\n" : "\n");
  }
  f << "  ],\n"
    << "  \"reuse_speedup\": " << reuse_speedup << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return reuse_speedup >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
