// Table II — dataset statistics for the D1-like and D2-like scenarios:
// node count, positive count, BN edge count, edge-type count. The paper's
// figures are printed alongside for the shape comparison; absolute
// numbers scale with --users / --users_d2.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

namespace {

void Describe(const char* name, datagen::ScenarioConfig cfg,
              TablePrinter* table) {
  auto ds = datagen::GenerateScenario(cfg);
  storage::EdgeStore edges;
  bn::BnBuilder builder(bn::BnConfig{}, &edges);
  builder.BuildFromLogs(ds.logs);
  table->AddRow({name, WithThousands(static_cast<int64_t>(ds.users.size())),
                 WithThousands(ds.NumFraud()),
                 WithThousands(static_cast<int64_t>(edges.TotalEdges())),
                 std::to_string(kNumEdgeTypes)});
}

}  // namespace

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  const int users_d1 = flags.GetInt("users", 8000);
  const int users_d2 = flags.GetInt("users_d2", 12000);

  std::printf("== Table II: statistics of the two datasets ==\n");
  std::printf("paper:  D1: 67,072 nodes / 918 positive / 207,890 edges / 8 "
              "types\n");
  std::printf("        D2: 1,072,205 nodes / 989,728 positive / 2,787,733 "
              "edges / 8 types\n\n");
  TablePrinter table({"Dataset", "# node", "# positive", "# edge", "# type"});
  Describe("D1-like", datagen::ScenarioConfig::D1Like(users_d1), &table);
  Describe("D2-like", datagen::ScenarioConfig::D2Like(users_d2), &table);
  table.Print();
  std::printf("\n(scaled scenario; rerun with --users=67072 --users_d2=... "
              "for paper-sized populations)\n");
  return 0;
}
