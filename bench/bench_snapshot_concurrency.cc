// Snapshot concurrency benchmark: measures the lock-free read path of the
// versioned CSR snapshot under increasing sampler-thread counts, plus the
// parallel snapshot build itself. Writes BENCH_snapshot.json with
// single- vs multi-thread sampling throughput so the scaling factor can
// be tracked across machines (this box may be single-core; the absolute
// speedup only shows up on real multi-core hardware).
//
// Per-sample latencies additionally stream into an obs::MetricsRegistry
// histogram (concurrently, from every sampler thread — doubling as a
// live stress of the lock-free metric path); the registry dump is
// written next to the BENCH json (--obs_out=OBS_snapshot.json).
//
//   ./bench_snapshot_concurrency [--users=N] [--avg_degree=D]
//                                [--samples_per_thread=K]
//                                [--out=BENCH_snapshot.json]
//                                [--obs_out=OBS_snapshot.json]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bn/sampler.h"
#include "bn/snapshot.h"
#include "obs/metrics.h"
#include "storage/edge_store.h"
#include "util/rng.h"
#include "util/time_util.h"

namespace turbo::benchx {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Random multi-type graph with Zipf-skewed endpoint popularity, shaped
// like a BN: a few hub users (shared device farms / public Wi-Fi) and a
// long tail of low-degree users.
storage::EdgeStore MakeGraph(int users, int avg_degree, Rng* rng) {
  storage::EdgeStore edges;
  const long target = static_cast<long>(users) * avg_degree / 2;
  for (long i = 0; i < target; ++i) {
    const int t = static_cast<int>(rng->NextUint(kNumEdgeTypes));
    const UserId u = static_cast<UserId>(rng->NextZipf(users, 0.8));
    UserId v = static_cast<UserId>(rng->NextUint(users));
    if (u == v) v = (v + 1) % users;
    edges.AddWeight(t, u, v, static_cast<float>(rng->NextDouble(0.1, 2.0)),
                    /*now=*/0);
  }
  return edges;
}

struct SamplingRun {
  int threads = 0;
  size_t samples = 0;
  double seconds = 0.0;
  double per_second = 0.0;
};

// Every thread gets its own sampler (own RNG stream) over the SAME
// shared snapshot — the production shape: one published version, many
// concurrent sampling requests.
SamplingRun RunSampling(const bn::GraphView& view, int threads,
                        int samples_per_thread,
                        obs::MetricsRegistry* metrics) {
  bn::SamplerConfig cfg;  // defaults: 2 hops, fanout 25
  const int n = view.num_nodes();
  obs::Histogram* sample_ms = metrics->GetHistogram("sample_ms");
  obs::Histogram* sample_nodes = metrics->GetHistogram(
      "sample_subgraph_nodes", obs::Histogram::DefaultSizeBuckets());
  obs::Counter* samples_total = metrics->GetCounter("samples_total");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&view, &cfg, n, samples_per_thread, w, sample_ms,
                          sample_nodes, samples_total] {
      bn::SubgraphSampler sampler(view, cfg, /*seed=*/1000 + w);
      Rng targets(7 * (w + 1));
      size_t touched = 0;
      for (int i = 0; i < samples_per_thread; ++i) {
        const UserId uid = static_cast<UserId>(targets.NextUint(n));
        Stopwatch sw;
        const auto sg = sampler.SampleOne(uid);
        sample_ms->Observe(sw.ElapsedMillis());
        sample_nodes->Observe(static_cast<double>(sg.nodes.size()));
        samples_total->Increment();
        touched += sg.nodes.size();
      }
      TURBO_CHECK_GT(touched, 0u);
    });
  }
  for (auto& w : workers) w.join();
  SamplingRun run;
  run.threads = threads;
  run.samples = static_cast<size_t>(threads) * samples_per_thread;
  run.seconds = SecondsSince(t0);
  run.per_second = run.samples / run.seconds;
  return run;
}

double TimeBuild(const storage::EdgeStore& edges, int users, int threads,
                 obs::MetricsRegistry* metrics) {
  bn::SnapshotOptions opt;
  opt.num_threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  auto snap = bn::BnSnapshot::Build(edges, users, opt);
  const double s = SecondsSince(t0);
  TURBO_CHECK_GT(snap->TotalEdges(), 0u);
  metrics->GetHistogram("snapshot_build_ms")->Observe(s * 1e3);
  metrics->GetGauge("snapshot_memory_bytes")
      ->Set(static_cast<double>(snap->MemoryBytes()));
  return s;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int users = flags.GetInt("users", 20000);
  const int avg_degree = flags.GetInt("avg_degree", 8);
  const int samples_per_thread = flags.GetInt("samples_per_thread", 2000);
  const std::string out = flags.GetString("out", "BENCH_snapshot.json");
  const std::string obs_out =
      flags.GetString("obs_out", "OBS_snapshot.json");
  obs::MetricsRegistry metrics;

  Rng rng(42);
  storage::EdgeStore edges = MakeGraph(users, avg_degree, &rng);
  std::printf("graph: %d users, %zu undirected edges\n", users,
              edges.TotalEdges());

  const double build_1t = TimeBuild(edges, users, 1, &metrics);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const double build_mt = TimeBuild(edges, users, 0, &metrics);
  std::printf("snapshot build: %.1f ms (1 thread) / %.1f ms (%d threads)\n",
              build_1t * 1e3, build_mt * 1e3, hw);

  bn::GraphView view(bn::BnSnapshot::Build(edges, users, {}, /*version=*/1));

  std::vector<SamplingRun> runs;
  for (int threads : {1, 2, 4, 8}) {
    runs.push_back(
        RunSampling(view, threads, samples_per_thread, &metrics));
    std::printf("sampling: %d thread(s)  %zu subgraphs in %.2fs  "
                "-> %.0f samples/s\n",
                runs.back().threads, runs.back().samples,
                runs.back().seconds, runs.back().per_second);
  }
  const double speedup = runs.back().per_second / runs.front().per_second;
  std::printf("8-thread vs 1-thread throughput: %.2fx (on %d hw threads)\n",
              speedup, hw);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"snapshot_concurrency\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"undirected_edges\": " << edges.TotalEdges() << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"build_ms_1_thread\": " << build_1t * 1e3 << ",\n"
    << "  \"build_ms_hw_threads\": " << build_mt * 1e3 << ",\n"
    << "  \"sampling\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    f << "    {\"threads\": " << runs[i].threads
      << ", \"samples\": " << runs[i].samples
      << ", \"seconds\": " << runs[i].seconds
      << ", \"samples_per_second\": " << runs[i].per_second << "}"
      << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  f << "  ],\n"
    << "  \"throughput_speedup_8v1\": " << speedup << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());

  std::printf("%s\n",
              metrics.GetHistogram("sample_ms")
                  ->Summary("per-sample latency").c_str());
  std::ofstream obs_f(obs_out);
  obs_f << metrics.RenderJson();
  std::printf("wrote %s\n", obs_out.c_str());
  return 0;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
