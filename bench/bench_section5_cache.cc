// Section V — the caching optimization study: serving latency with the
// statistical features recomputed from the relational log store on every
// request (pre-optimization) versus served through the Redis-style LRU
// cache (post-optimization).
//
// The paper reports mean 6.8s -> 0.8s, p50 6.73 -> 0.8, p99 11.3 -> 0.99,
// p999 12.66 -> 1.33 (-88% overall). Storage costs here are modeled by
// the virtual cost model (storage/sim_clock.h); the *ratios* are the
// reproduction target.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "server/prediction_server.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

namespace {

struct RunResult {
  double mean, p50, p99, p999;
};

RunResult RunServing(const core::PreparedData& data, core::Hag* model,
                     const bn::BnConfig& bn_cfg, bool use_cache,
                     int requests) {
  server::BnServerConfig bcfg;
  bcfg.bn = bn_cfg;
  bcfg.num_users = static_cast<int>(data.dataset.users.size());
  server::BnServer bn(bcfg);
  bn.IngestBatch(data.dataset.logs);

  features::FeatureStoreConfig fcfg;
  fcfg.use_cache = use_cache;
  features::FeatureStore features(fcfg, &bn.logs());
  for (UserId u = 0; u < static_cast<UserId>(data.dataset.users.size());
       ++u) {
    const float* row = data.dataset.profile_features.row(u);
    features.PutProfile(
        u, std::vector<float>(row,
                              row + data.dataset.profile_features.cols()));
  }
  server::PredictionServer prediction(server::PredictionConfig{}, &bn,
                                      &features, model, &data.scaler);
  std::vector<UserId> order = data.test_uids;
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return data.dataset.users[a].application_time <
           data.dataset.users[b].application_time;
  });
  if (static_cast<int>(order.size()) > requests) order.resize(requests);
  for (UserId u : order) {
    bn.AdvanceTo(data.dataset.users[u].application_time + kDay);
    // Each request is served once; the cache pays its miss on first
    // touch like production. Sampled *neighbors* recur across requests,
    // which is where the cache earns its keep.
    prediction.Handle(u);
  }
  const auto& t = prediction.total_latency();
  return RunResult{t.Mean(), t.Percentile(0.5), t.Percentile(0.99),
                   t.Percentile(0.999)};
}

}  // namespace

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 2000);
  const int requests = flags.GetInt("requests", 300);

  std::printf("== Section V: serving latency, uncached vs cached "
              "(users=%d, %d requests) ==\n\n", scale.users, requests);

  // One window config shared by the offline pipeline and the online BN
  // server, so trained edge-weight scales match the serving graph.
  core::PipelineConfig pipeline;
  pipeline.bn.windows = {kHour, 6 * kHour, kDay};
  auto data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(scale.users)),
      pipeline);
  core::Hag model(benchx::MakeHagConfig(scale, 42));
  core::TrainAndScoreGnn(&model, *data, bn::SamplerConfig{},
                         benchx::MakeTrainConfig(scale, 42));

  auto uncached =
      RunServing(*data, &model, pipeline.bn, /*use_cache=*/false, requests);
  auto cached =
      RunServing(*data, &model, pipeline.bn, /*use_cache=*/true, requests);

  TablePrinter table({"configuration", "mean (ms)", "p50", "p99", "p999"});
  table.AddRow("no cache (MySQL only)",
               {uncached.mean, uncached.p50, uncached.p99, uncached.p999});
  table.AddRow("Redis cache in front",
               {cached.mean, cached.p50, cached.p99, cached.p999});
  table.Print();
  std::printf("\nimprovement: mean %.0f%%, p50 %.0f%%, p99 %.0f%%, p999 "
              "%.0f%%\n",
              100 * (1 - cached.mean / uncached.mean),
              100 * (1 - cached.p50 / uncached.p50),
              100 * (1 - cached.p99 / uncached.p99),
              100 * (1 - cached.p999 / uncached.p999));
  std::printf("paper: mean 6.8s -> 0.8s, p50 6.73 -> 0.8, p99 11.3 -> "
              "0.99, p999 12.66 -> 1.33 (online time -88%%)\n");
  return 0;
}
