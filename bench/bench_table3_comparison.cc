// Table III — performance comparison of all eleven methods on the
// D1-like dataset: Precision / Recall / F1 / F2 / AUC (%) and the AUC
// variance across rounds, at classification threshold 0.5.
//
// Expected shape (paper): feature models precision-heavy but recall-
// light; GNNs recall-heavy; graph-feature methods in between; GraphSAGE
// the best baseline; HAG the best overall AUC/F1.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/time_util.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  const std::string only = flags.GetString("method", "");

  std::printf("== Table III: performance comparison on D1 (%%, threshold "
              "0.5) ==\n");
  std::printf("users=%d rounds=%d epochs=%d\n\n", scale.users, scale.rounds,
              scale.epochs);

  auto rounds = benchx::PrepareRounds(
      datagen::ScenarioConfig::D1Like(scale.users), scale.rounds);
  const auto& data0 = *rounds[0];
  std::printf("dataset: %zu users (%d fraud), BN %zu edges, %zu features\n\n",
              data0.dataset.users.size(), data0.dataset.NumFraud(),
              data0.network.TotalEdges(), data0.features.cols());

  TablePrinter table({"Methods", "Precision", "Recall", "F1", "F2", "AUC",
                      "Variance", "sec"});
  for (const auto& name : benchx::TableThreeMethods()) {
    if (!only.empty() && name != only) continue;
    Stopwatch sw;
    auto res = benchx::EvaluateMethod(name, rounds, scale);
    table.AddRow({name, StrFormat("%.2f", res.mean.precision_pct),
                  StrFormat("%.2f", res.mean.recall_pct),
                  StrFormat("%.2f", res.mean.f1_pct),
                  StrFormat("%.2f", res.mean.f2_pct),
                  StrFormat("%.2f", res.mean.auc_pct),
                  StrFormat("%.2f", res.auc_variance),
                  StrFormat("%.1f", sw.ElapsedSeconds())});
    std::printf("%-7s done (AUC %.2f)\n", name.c_str(), res.mean.auc_pct);
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\npaper Table III for reference: LR 69.39, SVM 68.61, GBDT 77.86, "
      "NN 72.37,\nGCN 77.10, G-SAGE 81.77, GAT 79.36, BLP 78.59, DTX1 "
      "37.30, DTX2 78.92, HAG 83.13 (AUC %%)\n");
  return 0;
}
