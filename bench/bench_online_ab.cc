// Section VI-E — the online A/B test, simulated: a month of live
// applications flows through the legacy rule-based risk system
// (baseline group) versus the legacy system plus Turbo at threshold 0.85
// (test group). Reported like the paper: the fraud ratio among *passed*
// applications, its relative reduction, and Turbo's online precision and
// recall (paper: -23.19%, precision 92.0%, recall 42.8%).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "server/prediction_server.h"
#include "server/scorecard.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 2500);
  const double threshold = flags.GetDouble("threshold", 0.85);

  std::printf("== Section VI-E: simulated online A/B test (users=%d, "
              "threshold=%.2f) ==\n\n", scale.users, threshold);

  // Offline: train Turbo on the historical window; the A/B runs on the
  // *test-split* applications, streamed in audit order (unseen users,
  // like the live month).
  // One window config shared by the offline pipeline and the online BN
  // server, so trained edge-weight scales match the serving graph.
  core::PipelineConfig pipeline;
  pipeline.bn.windows = {kHour, 6 * kHour, kDay};
  auto data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(scale.users)),
      pipeline);
  core::Hag model(benchx::MakeHagConfig(scale, 42));
  core::TrainAndScoreGnn(&model, *data, bn::SamplerConfig{},
                         benchx::MakeTrainConfig(scale, 42));

  server::BnServerConfig bcfg;
  bcfg.bn = pipeline.bn;
  bcfg.num_users = static_cast<int>(data->dataset.users.size());
  server::BnServer bn(bcfg);
  bn.IngestBatch(data->dataset.logs);
  features::FeatureStore features(features::FeatureStoreConfig{},
                                  &bn.logs());
  for (UserId u = 0; u < static_cast<UserId>(data->dataset.users.size());
       ++u) {
    const float* row = data->dataset.profile_features.row(u);
    features.PutProfile(
        u, std::vector<float>(row,
                              row + data->dataset.profile_features.cols()));
  }
  server::PredictionConfig pcfg;
  pcfg.threshold = threshold;
  server::PredictionServer turbo_server(pcfg, &bn, &features, &model,
                                        &data->scaler);
  server::Scorecard legacy;

  std::vector<UserId> order = data->test_uids;
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return data->dataset.users[a].application_time <
           data->dataset.users[b].application_time;
  });

  // Both groups first pass the legacy rules; the test group additionally
  // runs Turbo. Per the paper's protocol, detected applications are NOT
  // blocked — labels are observed after the lease and the counterfactual
  // fraud ratio is computed.
  int64_t passed = 0, passed_fraud = 0;
  int64_t turbo_flagged = 0, turbo_flagged_fraud = 0;
  for (UserId u : order) {
    if (legacy.Blocks(data->dataset.profile_features, u)) continue;
    ++passed;
    passed_fraud += data->labels[u];
    bn.AdvanceTo(data->dataset.users[u].application_time + kDay);
    auto resp = turbo_server.Handle(u);
    if (resp.blocked) {
      ++turbo_flagged;
      turbo_flagged_fraud += data->labels[u];
    }
  }
  const int64_t test_passed = passed - turbo_flagged;
  const int64_t test_fraud = passed_fraud -
                             turbo_flagged_fraud;
  const double base_ratio =
      passed > 0 ? static_cast<double>(passed_fraud) / passed : 0.0;
  const double test_ratio =
      test_passed > 0 ? static_cast<double>(test_fraud) / test_passed : 0.0;

  TablePrinter table({"group", "passed", "fraud among passed",
                      "fraud ratio"});
  table.AddRow({"baseline (legacy rules)", std::to_string(passed),
                std::to_string(passed_fraud),
                StrFormat("%.2f%%", 100 * base_ratio)});
  table.AddRow({"test (rules + Turbo)", std::to_string(test_passed),
                std::to_string(test_fraud),
                StrFormat("%.2f%%", 100 * test_ratio)});
  table.Print();

  const double reduction =
      base_ratio > 0 ? 100.0 * (base_ratio - test_ratio) / base_ratio : 0.0;
  const double precision =
      turbo_flagged > 0
          ? 100.0 * turbo_flagged_fraud / turbo_flagged
          : 0.0;
  const double recall =
      passed_fraud > 0 ? 100.0 * turbo_flagged_fraud / passed_fraud : 0.0;
  std::printf("\nfraud-ratio reduction: %.2f%%  (paper: 23.19%%)\n",
              reduction);
  std::printf("Turbo online precision: %.1f%%  recall: %.1f%%  (paper: "
              "92.0%% / 42.8%% at threshold 0.85)\n",
              precision, recall);
  return 0;
}
