// Figure 9 — case study: the influence distribution (Definition 1) of a
// fraud ring's computation subgraph under a trained HAG. The paper's
// observation: influence values inside the fraud block of the heat map
// exceed those outside — fraud nodes shape each other's embeddings.
#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"
#include "core/influence.h"
#include "util/string_util.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 3000);

  std::printf("== Figure 9: influence distribution on a fraud-ring "
              "subgraph (users=%d) ==\n\n", scale.users);

  auto data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(scale.users)),
      core::PipelineConfig{});

  auto hag_cfg = benchx::MakeHagConfig(scale, 42);
  hag_cfg.dropout = 0.0f;
  core::Hag hag(hag_cfg);
  core::TrainAndScoreGnn(&hag, *data, bn::SamplerConfig{},
                         benchx::MakeTrainConfig(scale, 42));

  // Largest fraud ring + its neighborhood, like the paper's 4-fraud-node
  // case.
  std::unordered_map<int, std::vector<UserId>> rings;
  for (const auto& u : data->dataset.users) {
    if (u.ring_id >= 0) rings[u.ring_id].push_back(u.uid);
  }
  std::vector<UserId> ring;
  for (const auto& [id, members] : rings) {
    if (members.size() > ring.size()) ring = members;
  }
  bn::SamplerConfig scfg;
  scfg.num_hops = 1;
  scfg.fanout = 3;
  bn::SubgraphSampler sampler(data->network, scfg);
  auto sg = sampler.Sample(ring);
  auto batch = gnn::MakeGraphBatch(sg, data->features);
  const size_t show = std::min<size_t>(batch.num_nodes(), 14);
  std::printf("ring of %zu fraudsters; subgraph %zu nodes (showing %zu)\n\n",
              ring.size(), batch.num_nodes(), show);

  std::vector<int> targets;
  for (size_t i = 0; i < show; ++i) targets.push_back(static_cast<int>(i));
  auto dist = core::InfluenceDistribution(&hag, batch, targets);

  std::printf("influence heat map D_i(j) x100 (columns j = source node, "
              "rows i = influenced node; F = fraud)\n\n      ");
  for (size_t j = 0; j < show; ++j) {
    std::printf("%4zu%c", j,
                data->labels[batch.global_ids[j]] ? 'F' : ' ');
  }
  std::printf("\n");
  double in_block = 0, out_block = 0;
  int n_in = 0, n_out = 0;
  for (size_t i = 0; i < show; ++i) {
    std::printf("%4zu%c ", i, data->labels[batch.global_ids[i]] ? 'F' : ' ');
    for (size_t j = 0; j < show; ++j) {
      std::printf("%4.1f ", 100 * dist(i, j));
      if (i == j) continue;
      const bool fi = data->labels[batch.global_ids[i]];
      const bool fj = data->labels[batch.global_ids[j]];
      if (fi && fj) {
        in_block += dist(i, j);
        ++n_in;
      } else {
        out_block += dist(i, j);
        ++n_out;
      }
    }
    std::printf("\n");
  }
  std::printf("\nmean pairwise influence: fraud->fraud %.4f vs other pairs "
              "%.4f (ratio %.1fx)\n",
              in_block / std::max(1, n_in), out_block / std::max(1, n_out),
              (in_block / std::max(1, n_in)) /
                  std::max(1e-9, out_block / std::max(1, n_out)));
  std::printf("shape check (paper): values inside the fraud block exceed "
              "those outside — fraud nodes influence each other during "
              "embedding generation.\n");
  return 0;
}
