// Shared infrastructure for the paper-reproduction bench binaries: flag
// parsing, single-core-sized model configurations, and a method registry
// that runs any Table III row end-to-end on a PreparedData.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/turbo.h"
#include "graphfe/blp.h"
#include "graphfe/deepwalk.h"
#include "ml/gbdt.h"
#include "ml/linear.h"
#include "ml/mlp.h"

namespace turbo::benchx {

/// Aborts unless this binary was built with optimization AND a
/// Release-family CMAKE_BUILD_TYPE: numbers from unoptimized builds are
/// meaningless and have been committed as baselines by accident before.
/// Set TURBO_ALLOW_DEBUG_BENCH=1 to downgrade the abort to a warning
/// (for smoke-testing bench code paths, never for recording).
void RequireReleaseBuild();

/// --key=value flags with typed getters. Construction runs
/// RequireReleaseBuild(), so every bench using Flags is Release-gated.
class Flags {
 public:
  Flags(int argc, char** argv);
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  std::string GetString(const std::string& key,
                        const std::string& def) const;
  bool GetBool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// Model/training sizes tuned for a single-core machine; the paper's
/// settings (hidden 128/64, attention 64) are reachable with
/// --paper_scale=1.
struct BenchScale {
  int users = 4000;
  int epochs = 60;
  std::vector<int> hidden = {48, 24};
  int attention_dim = 24;
  int mlp_hidden = 24;
  int rounds = 3;

  static BenchScale FromFlags(const Flags& flags);
};

gnn::GnnConfig MakeGnnConfig(const BenchScale& s, uint64_t seed);
core::HagConfig MakeHagConfig(const BenchScale& s, uint64_t seed,
                              bool use_sao = true, bool use_cfo = true);
gnn::TrainConfig MakeTrainConfig(const BenchScale& s, uint64_t seed);

/// Table III method names in paper order.
const std::vector<std::string>& TableThreeMethods();

/// Trains method `name` on data's train split and returns test-split
/// fraud probabilities (aligned with data.test_uids). `seed` varies
/// initialization/sampling per round.
///
/// Sampler fidelity: the GNN baselines sample neighbors uniformly, as
/// GCN/GraphSAGE/GAT specify; HAG uses Turbo's weight-guided BN-server
/// sampler (part of the system under reproduction).
std::vector<double> RunMethod(const std::string& name,
                              const core::PreparedData& data,
                              const BenchScale& scale, uint64_t seed);

/// Prepares one PreparedData per round, each with a different train/test
/// split (the paper's "multiple rounds of the same experiment").
std::vector<std::unique_ptr<core::PreparedData>> PrepareRounds(
    const datagen::ScenarioConfig& scenario, int rounds,
    core::PipelineConfig pipeline = {});

/// Full evaluation of one method across rounds (distinct splits and
/// seeds): averaged metrics plus AUC variance (the Variance column).
struct MethodResult {
  metrics::Report mean;
  double auc_variance = 0.0;
};
MethodResult EvaluateMethod(
    const std::string& name,
    const std::vector<std::unique_ptr<core::PreparedData>>& rounds,
    const BenchScale& scale, double threshold = 0.5);

}  // namespace turbo::benchx
