// Figure 3 — the BN construction toy example: five users sharing one
// behavior value; the inner four co-occur within a 1-hour epoch (each
// pair gets 1/4), all five within the 2-hour epoch (each pair gets 1/5).
#include <cstdio>

#include "bn/builder.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main() {
  std::printf("== Figure 3: BN construction toy example ==\n\n");
  BehaviorLogList logs = {
      {0, BehaviorType::kIpv4, 42, 30 * kMinute},
      {1, BehaviorType::kIpv4, 42, 32 * kMinute},
      {2, BehaviorType::kIpv4, 42, 40 * kMinute},
      {3, BehaviorType::kIpv4, 42, 55 * kMinute},
      {4, BehaviorType::kIpv4, 42, 85 * kMinute},
  };
  bn::BnConfig cfg;
  cfg.windows = {kHour, 2 * kHour};
  storage::EdgeStore edges;
  bn::BnBuilder(cfg, &edges).BuildFromLogs(logs);

  TablePrinter table({"edge", "weight", "expected", "windows"});
  const int ip = EdgeTypeIndex(BehaviorType::kIpv4);
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      const float w = edges.Weight(ip, u, v);
      const bool outer = (v == 4);
      table.AddRow({StrFormat("u%u-u%u", u, v), StrFormat("%.3f", w),
                    outer ? "0.200" : "0.450",
                    outer ? "2h (1/5)" : "1h (1/4) + 2h (1/5)"});
    }
  }
  table.Print();
  std::printf("\nAll %zu pairs form a clique; shorter co-occurrence "
              "intervals accumulate larger weights.\n",
              static_cast<size_t>(edges.NumEdges(ip)));
  return 0;
}
