// Figure 4 — the empirical study of fraud behaviors on BN (Section
// III-B), printed as the numeric series behind each subfigure:
//   4a-b  behavior-over-time burst statistics
//   4c    temporal-aggregation interval distributions (violin data)
//   4d    n-hop neighbor fraud ratio (all types)
//   4e-g  n-hop fraud ratio per edge type
//   4h-i  n-hop mean degree / weighted degree
#include <cstdio>

#include "analysis/empirical.h"
#include "bench/bench_common.h"
#include "bn/builder.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  const int users = flags.GetInt("users", 6000);
  std::printf("== Figure 4: observational study of fraud behaviors "
              "(users=%d) ==\n\n", users);

  auto ds = datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(users));
  storage::EdgeStore edges;
  bn::BnBuilder(bn::BnConfig{}, &edges).BuildFromLogs(ds.logs);
  // Raw co-occurrence weights (no normalization): the empirical study
  // reads the accumulated weights themselves.
  bn::SnapshotOptions raw;
  raw.normalize = false;
  bn::GraphView net(bn::BnSnapshot::Build(
      edges, static_cast<int>(ds.users.size()), raw));
  auto labels = ds.Labels();

  // --- 4a-b ---
  auto burst = analysis::TimeBurst(ds);
  std::printf("[Fig 4a-b] behavior-over-time burst\n");
  TablePrinter t1({"group", "users", "mean span (d)", "median span (d)",
                   "logs within ±1d of app", "within ±3d"});
  t1.AddRow({"normal", std::to_string(burst.normal.num_users),
             StrFormat("%.1f", burst.normal.mean_span_days),
             StrFormat("%.1f", burst.normal.median_span_days),
             StrFormat("%.1f%%", 100 * burst.normal.frac_logs_within_1d),
             StrFormat("%.1f%%", 100 * burst.normal.frac_logs_within_3d)});
  t1.AddRow({"fraud", std::to_string(burst.fraud.num_users),
             StrFormat("%.1f", burst.fraud.mean_span_days),
             StrFormat("%.1f", burst.fraud.median_span_days),
             StrFormat("%.1f%%", 100 * burst.fraud.frac_logs_within_1d),
             StrFormat("%.1f%%", 100 * burst.fraud.frac_logs_within_3d)});
  t1.Print();
  std::printf("shape check: fraud logs burst around the application; "
              "normal logs scatter over the lease.\n\n");

  // --- 4c ---
  std::printf("[Fig 4c] pairwise same-(type,value) time-interval "
              "distribution (row-normalized %%)\n");
  std::vector<std::string> header = {"type", "group"};
  for (const char* b : analysis::kIntervalBucketNames) header.push_back(b);
  TablePrinter t2(header);
  for (BehaviorType type :
       {BehaviorType::kDeviceId, BehaviorType::kImei, BehaviorType::kIpv4,
        BehaviorType::kWifiMac, BehaviorType::kGps100,
        BehaviorType::kGpsDev100, BehaviorType::kWorkplace}) {
    auto dist = analysis::TemporalAggregation(ds, type);
    for (int grp = 0; grp < 2; ++grp) {
      std::vector<std::string> row = {std::string(BehaviorTypeName(type)),
                                      grp ? "fraud" : "normal"};
      const auto& h = grp ? dist.fraud : dist.normal;
      for (double v : h) row.push_back(StrFormat("%.1f", 100 * v));
      t2.AddRow(std::move(row));
    }
  }
  t2.Print();
  std::printf("shape check: fraud mass spikes at short intervals and "
              "decays; normal mass is spread out.\n\n");

  // --- 4d ---
  const int hops = 4;
  auto ratio = analysis::HopFraudRatio(net, labels, hops);
  std::printf("[Fig 4d] fraud ratio of exactly-n-hop neighbors (all edge "
              "types)\n");
  TablePrinter t3({"seed group", "1-hop", "2-hop", "3-hop", "4-hop"});
  t3.AddRow("fraud seeds", {100 * ratio.fraud_seed[0],
                            100 * ratio.fraud_seed[1],
                            100 * ratio.fraud_seed[2],
                            100 * ratio.fraud_seed[3]});
  t3.AddRow("normal seeds", {100 * ratio.normal_seed[0],
                             100 * ratio.normal_seed[1],
                             100 * ratio.normal_seed[2],
                             100 * ratio.normal_seed[3]});
  t3.Print();
  std::printf("shape check: fraud-seed ratio high and decaying with hops; "
              "normal-seed ratio low and flat.\n\n");

  // --- 4e-g ---
  std::printf("[Fig 4e-g] 1-hop fraud ratio around fraud seeds, per edge "
              "type\n");
  TablePrinter t4({"edge type", "fraud-seed 1-hop ratio",
                   "normal-seed 1-hop ratio"});
  for (int et = 0; et < kNumEdgeTypes; ++et) {
    auto r = analysis::HopFraudRatio(net, labels, 1, et);
    t4.AddRow({std::string(BehaviorTypeName(kEdgeTypes[et])),
               StrFormat("%.1f%%", 100 * r.fraud_seed[0]),
               StrFormat("%.1f%%", 100 * r.normal_seed[0])});
  }
  t4.Print();
  std::printf("shape check: deterministic types (DeviceId/IMEI/IMSI) carry "
              "the strongest homophily.\n\n");

  // --- 4h-i ---
  auto deg = analysis::HopMeanDegree(net, labels, 3, /*weighted=*/false);
  auto wdeg = analysis::HopMeanDegree(net, labels, 3, /*weighted=*/true);
  std::printf("[Fig 4h-i] mean (weighted) degree of n-hop neighbors\n");
  TablePrinter t5({"seed group", "deg 1-hop", "deg 2-hop", "deg 3-hop",
                   "wdeg 1-hop", "wdeg 2-hop", "wdeg 3-hop"});
  t5.AddRow("fraud seeds",
            {deg.fraud_seed[0], deg.fraud_seed[1], deg.fraud_seed[2],
             wdeg.fraud_seed[0], wdeg.fraud_seed[1], wdeg.fraud_seed[2]});
  t5.AddRow("normal seeds",
            {deg.normal_seed[0], deg.normal_seed[1], deg.normal_seed[2],
             wdeg.normal_seed[0], wdeg.normal_seed[1], wdeg.normal_seed[2]});
  t5.Print();
  std::printf("shape check: fraud neighborhoods are larger and more "
              "tightly connected, amplified under weighting.\n");
  return 0;
}
