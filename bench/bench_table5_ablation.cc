// Table V — operator ablation: HAG with SAO removed (SAO(-)), CFO
// removed (CFO(-)), both removed (Both(-)), and the full model.
// Expected shape: removing either operator hurts; removing both hurts
// most; HAG best on every column.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 3500);
  scale.rounds = flags.GetInt("rounds", 2);

  std::printf("== Table V: effect of SAO and CFO (%%) ==\n");
  std::printf("users=%d rounds=%d epochs=%d\n\n", scale.users, scale.rounds,
              scale.epochs);

  auto rounds = benchx::PrepareRounds(
      datagen::ScenarioConfig::D1Like(scale.users), scale.rounds);

  TablePrinter table({"Operator", "Precision", "Recall", "F1", "F2", "AUC"});
  for (const char* name : {"SAO(-)", "CFO(-)", "Both(-)", "HAG"}) {
    auto res = benchx::EvaluateMethod(name, rounds, scale);
    table.AddRow(name,
                 {res.mean.precision_pct, res.mean.recall_pct,
                  res.mean.f1_pct, res.mean.f2_pct, res.mean.auc_pct});
    std::printf("%-8s done (AUC %.2f)\n", name, res.mean.auc_pct);
  }
  std::printf("\n");
  table.Print();
  std::printf("\npaper Table V (AUC %%): SAO(-) 82.37, CFO(-) 82.72, "
              "Both(-) 81.93, HAG 83.13\n");
  return 0;
}
