// Figure 7 — percentage AUC drop when each edge type is masked out of BN
// and HAG is retrained. Expected shape: deterministic types (Device Id,
// IMEI, IMSI) contribute most; probabilistic types least.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 3000);
  scale.rounds = flags.GetInt("rounds", 1);

  std::printf("== Figure 7: AUC drop per masked edge type (users=%d, "
              "rounds=%d) ==\n\n", scale.users, scale.rounds);

  auto scenario = datagen::ScenarioConfig::D1Like(scale.users);

  auto run = [&](int mask) {
    core::PipelineConfig pipeline;
    pipeline.mask_edge_type = mask;
    std::vector<std::unique_ptr<core::PreparedData>> rounds;
    for (int r = 0; r < scale.rounds; ++r) {
      pipeline.split_seed = 7 + 13 * r;
      rounds.push_back(core::PrepareData(
          datagen::GenerateScenario(scenario), pipeline));
    }
    return benchx::EvaluateMethod("HAG", rounds, scale).mean.auc_pct;
  };

  const double full_auc = run(-1);
  std::printf("full BN: HAG AUC %.2f%%\n\n", full_auc);

  TablePrinter table({"masked type", "kind", "AUC", "AUC drop (pp)"});
  for (int et = 0; et < kNumEdgeTypes; ++et) {
    const double auc = run(et);
    const bool deterministic =
        kEdgeTypes[et] == BehaviorType::kDeviceId ||
        kEdgeTypes[et] == BehaviorType::kImei ||
        kEdgeTypes[et] == BehaviorType::kImsi;
    table.AddRow({std::string(BehaviorTypeName(kEdgeTypes[et])),
                  deterministic ? "deterministic" : "probabilistic",
                  StrFormat("%.2f", auc),
                  StrFormat("%.2f", full_auc - auc)});
    std::printf("masked %-10s AUC %.2f\n",
                std::string(BehaviorTypeName(kEdgeTypes[et])).c_str(), auc);
  }
  std::printf("\n");
  table.Print();
  std::printf("\npaper: Device Id drops AUC the most (6.24pp); "
              "deterministic types contribute more than probabilistic "
              "ones.\n");
  return 0;
}
