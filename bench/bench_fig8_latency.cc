// Figure 8 — time-efficiency study.
//   8a: response time of the three online modules (BN-server sampling,
//       feature management, HAG prediction) over a stream of audit
//       requests.
//   8b: scalability — offline training time on the whole BN, and
//       per-request sampling/prediction latency, as BN size grows.
//
// Both serving servers report into one MetricsRegistry per stack, so the
// per-stage breakdown (ingest, window job, sample, feature, inference)
// printed here and dumped to --out (default BENCH_fig8.json) is sourced
// from the observability layer rather than ad-hoc timers; the CI
// bench-regression job uploads the JSON as an artifact.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "server/prediction_server.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

namespace {

struct ServingStack {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<core::PreparedData> data;
  std::unique_ptr<core::Hag> model;
  std::unique_ptr<server::BnServer> bn;
  std::unique_ptr<features::FeatureStore> features;
  std::unique_ptr<server::PredictionServer> prediction;
  double train_seconds = 0.0;
  double ingest_seconds = 0.0;
};

ServingStack BuildStack(int users, const benchx::BenchScale& scale) {
  ServingStack s;
  s.metrics = std::make_unique<obs::MetricsRegistry>();
  core::PipelineConfig pipeline;
  pipeline.bn.windows = {kHour, 6 * kHour, kDay};
  s.data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(users)),
      pipeline);
  s.model = std::make_unique<core::Hag>(benchx::MakeHagConfig(scale, 42));
  Stopwatch sw;
  core::TrainAndScoreGnn(s.model.get(), *s.data, bn::SamplerConfig{},
                         benchx::MakeTrainConfig(scale, 42));
  s.train_seconds = sw.ElapsedSeconds();

  server::BnServerConfig bcfg;
  bcfg.bn = pipeline.bn;
  bcfg.num_users = users;
  bcfg.metrics = s.metrics.get();
  s.bn = std::make_unique<server::BnServer>(bcfg);
  sw.Reset();
  s.bn->IngestBatch(s.data->dataset.logs);
  s.ingest_seconds = sw.ElapsedSeconds();
  s.features = std::make_unique<features::FeatureStore>(
      features::FeatureStoreConfig{}, &s.bn->logs());
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    const float* row = s.data->dataset.profile_features.row(u);
    s.features->PutProfile(
        u, std::vector<float>(
               row, row + s.data->dataset.profile_features.cols()));
  }
  server::PredictionConfig pcfg;
  pcfg.metrics = s.metrics.get();
  s.prediction = std::make_unique<server::PredictionServer>(
      pcfg, s.bn.get(), s.features.get(), s.model.get(),
      &s.data->scaler);
  return s;
}

/// Streams `n` audit requests in application-time order.
void Replay(ServingStack* s, size_t n) {
  std::vector<UserId> order = s->data->test_uids;
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return s->data->dataset.users[a].application_time <
           s->data->dataset.users[b].application_time;
  });
  if (order.size() > n) order.resize(n);
  for (UserId u : order) {
    s->bn->AdvanceTo(s->data->dataset.users[u].application_time + kDay);
    s->prediction->Handle(u);
  }
}

void JsonStage(std::ofstream& f, const char* name,
               const obs::Histogram& h, bool last = false) {
  f << "    \"" << name << "\": {\"count\": " << h.count()
    << ", \"mean_ms\": " << h.Mean() << ", \"p50_ms\": " << h.Percentile(0.5)
    << ", \"p95_ms\": " << h.Percentile(0.95)
    << ", \"p99_ms\": " << h.Percentile(0.99)
    << ", \"max_ms\": " << h.Max() << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  const int users = flags.GetInt("users", 2000);
  const int requests = flags.GetInt("requests", 1000);
  const std::string out = flags.GetString("out", "BENCH_fig8.json");

  std::printf("== Figure 8a: response time of the online modules ==\n");
  std::printf("users=%d, %d audit requests (paper: 1,000 applications)\n\n",
              users, requests);
  auto stack = BuildStack(users, scale);
  Replay(&stack, static_cast<size_t>(requests));
  std::printf("%s\n", stack.prediction->sampling_latency()
                          .Summary("BN server (sampling)").c_str());
  std::printf("%s\n", stack.prediction->feature_latency()
                          .Summary("feature management").c_str());
  std::printf("%s\n", stack.prediction->inference_latency()
                          .Summary("prediction (HAG)").c_str());
  std::printf("%s\n",
              stack.prediction->total_latency().Summary("total").c_str());

  // BN-side pipeline stages, from the same registry.
  const auto& reg = *stack.metrics;
  const auto& ingest =
      *stack.metrics->GetCounter("bn_ingest_events_total");
  std::printf("\n-- behavior-network pipeline (obs registry) --\n");
  std::printf("ingest: %llu events in %.2fs -> %.0f events/s\n",
              static_cast<unsigned long long>(ingest.value()),
              stack.ingest_seconds,
              static_cast<double>(ingest.value()) /
                  std::max(stack.ingest_seconds, 1e-9));
  std::printf("%s\n",
              stack.metrics->GetHistogram("bn_window_job_ms")
                  ->Summary("window jobs").c_str());
  std::printf("%s\n",
              stack.metrics->GetHistogram("bn_snapshot_build_ms")
                  ->Summary("snapshot builds").c_str());
  std::printf("window jobs=%llu, edge updates=%llu, snapshot version=%.0f "
              "(lag %.0fs)\n",
              static_cast<unsigned long long>(
                  stack.metrics->GetCounter("bn_window_jobs_total")
                      ->value()),
              static_cast<unsigned long long>(
                  stack.metrics->GetCounter("bn_window_edge_updates_total")
                      ->value()),
              stack.metrics->GetGauge("bn_snapshot_version")->value(),
              stack.metrics->GetGauge("bn_snapshot_lag_s")->value());

  std::printf("\npaper: feature engineering ~500ms dominates; sampling "
              "~87ms; prediction ~230ms; total < 1s.\n"
              "(our feature stage is also the dominant modeled cost; "
              "absolute values reflect the virtual cost model in "
              "storage/sim_clock.h)\n");

  // Per-stage breakdown + full registry dump for the CI artifact.
  {
    std::ofstream f(out);
    f << "{\n  \"bench\": \"fig8_latency\",\n"
      << "  \"users\": " << users << ",\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"ingest_events_per_second\": "
      << static_cast<double>(ingest.value()) /
             std::max(stack.ingest_seconds, 1e-9)
      << ",\n"
      << "  \"stages\": {\n";
    JsonStage(f, "window_job",
              *stack.metrics->GetHistogram("bn_window_job_ms"));
    JsonStage(f, "snapshot_build",
              *stack.metrics->GetHistogram("bn_snapshot_build_ms"));
    JsonStage(f, "sample", stack.prediction->sampling_latency());
    JsonStage(f, "feature", stack.prediction->feature_latency());
    JsonStage(f, "inference", stack.prediction->inference_latency());
    JsonStage(f, "total", stack.prediction->total_latency(), true);
    f << "  },\n  \"registry\": " << reg.RenderJson() << "}\n";
    std::printf("wrote %s\n", out.c_str());
  }

  std::printf("\n== Figure 8b: scalability with BN size ==\n\n");
  TablePrinter table({"users", "BN edges", "train (s)",
                      "sample+feat p50 (ms)", "predict p50 (ms)"});
  for (int n : {users / 4, users / 2, users}) {
    auto s = BuildStack(n, scale);
    Replay(&s, 200);
    table.AddRow({std::to_string(n),
                  std::to_string(s.data->network.TotalEdges()),
                  StrFormat("%.1f", s.train_seconds),
                  StrFormat("%.2f", s.prediction->sampling_latency()
                                            .Percentile(0.5) +
                                        s.prediction->feature_latency()
                                            .Percentile(0.5)),
                  StrFormat("%.2f",
                            s.prediction->inference_latency()
                                .Percentile(0.5))});
  }
  table.Print();
  std::printf("\nshape check: training cost grows ~linearly with BN size; "
              "per-request latency grows slowly (paper Fig. 8b).\n");
  return 0;
}
