// Google-benchmark microbenchmarks for the kernels the system is built
// on: dense/sparse linear algebra, BN construction throughput, subgraph
// sampling, statistical-feature computation, HAG forward pass, and GBDT
// training.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bn/builder.h"
#include "features/stat_features.h"
#include "la/kernel_dispatch.h"
#include "la/quant.h"

using namespace turbo;

namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto b = la::Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    auto c = la::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(256);

// The pre-optimization GEMM, kept verbatim as the "before" number for
// the blocked/unrolled kernels in la/matrix.cc: serial ikj with a
// zero-skip branch in the hot loop (a data-dependent branch that costs
// more than the multiplies it saves on dense inputs).
la::Matrix MatMulZeroSkipReference(const la::Matrix& a,
                                   const la::Matrix& b) {
  la::Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t p = 0; p < a.cols(); ++p) {
      const float av = a(i, p);
      if (av == 0.0f) continue;
      for (size_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(p, j);
    }
  }
  return c;
}

void BM_MatMulReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto b = la::Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    auto c = MatMulZeroSkipReference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulReference)->Arg(64)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto b = la::Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    auto c = la::MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(64)->Arg(256);

// SIMD dispatch cells: the same GEMM through la::dispatch on the best
// host tier vs forced scalar. check_bench_regression.py holds
// dispatch/256 to >= 3x scalar/256 whenever the host has a SIMD tier.
void BM_MatMulDispatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto b = la::Matrix::Randn(n, n, &rng);
  for (auto _ : state) {
    auto c = la::dispatch::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(la::IsaName(la::ActiveIsa()));
}
BENCHMARK(BM_MatMulDispatch)->Arg(64)->Arg(256);

void BM_MatMulScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto b = la::Matrix::Randn(n, n, &rng);
  la::ScopedKernelIsa scalar(la::KernelIsa::kScalar);
  for (auto _ : state) {
    auto c = la::dispatch::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulScalar)->Arg(64)->Arg(256);

// Int8 row-quantized GEMM (weights pre-quantized, as in serving where
// the QuantCache is filled once at SetInferenceMode time).
void BM_MatMulInt8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  auto a = la::Matrix::Randn(n, n, &rng);
  auto w = la::Matrix::Randn(n, n, &rng);
  const la::QuantizedMatrix q = la::QuantizedMatrix::Quantize(w);
  for (auto _ : state) {
    auto c = la::dispatch::MatMulQuant(a, q);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(la::IsaName(la::ActiveIsa()));
}
BENCHMARK(BM_MatMulInt8)->Arg(64)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  const size_t n = 20000, nnz = 200000, d = 32;
  Rng rng(2);
  std::vector<la::Triplet> trips;
  trips.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    trips.push_back({static_cast<uint32_t>(rng.NextUint(n)),
                     static_cast<uint32_t>(rng.NextUint(n)), 1.0f});
  }
  auto adj = la::SparseMatrix::FromTriplets(n, n, trips);
  auto x = la::Matrix::Randn(n, d, &rng);
  for (auto _ : state) {
    auto y = adj.Multiply(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * d);
}
BENCHMARK(BM_SpMM);

/// CSR fixture shared by the dispatched SpMM cells.
const la::SparseMatrix& SharedSparse() {
  static const la::SparseMatrix adj = [] {
    const size_t n = 20000, nnz = 200000;
    Rng rng(2);
    std::vector<la::Triplet> trips;
    trips.reserve(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      trips.push_back({static_cast<uint32_t>(rng.NextUint(n)),
                       static_cast<uint32_t>(rng.NextUint(n)), 1.0f});
    }
    return la::SparseMatrix::FromTriplets(n, n, trips);
  }();
  return adj;
}

// Dispatched SpMM, best tier vs forced scalar; the regression gate holds
// dispatch to >= 2x scalar on SIMD hosts.
void BM_SpMMDispatch(benchmark::State& state) {
  const size_t d = 32;
  const auto& adj = SharedSparse();
  Rng rng(3);
  auto x = la::Matrix::Randn(adj.cols(), d, &rng);
  for (auto _ : state) {
    auto y = la::dispatch::Spmm(adj, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * d);
  state.SetLabel(la::IsaName(la::ActiveIsa()));
}
BENCHMARK(BM_SpMMDispatch);

void BM_SpMMScalar(benchmark::State& state) {
  const size_t d = 32;
  const auto& adj = SharedSparse();
  Rng rng(3);
  auto x = la::Matrix::Randn(adj.cols(), d, &rng);
  la::ScopedKernelIsa scalar(la::KernelIsa::kScalar);
  for (auto _ : state) {
    auto y = la::dispatch::Spmm(adj, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * d);
}
BENCHMARK(BM_SpMMScalar);

// Fused act(S*X + addend) epilogue vs the unfused three-pass compose —
// the win the reassociated inference forwards bank on.
void BM_SpMMBiasActFused(benchmark::State& state) {
  const size_t d = 32;
  const auto& adj = SharedSparse();
  Rng rng(3);
  auto x = la::Matrix::Randn(adj.cols(), d, &rng);
  auto addend = la::Matrix::Randn(adj.rows(), d, &rng);
  for (auto _ : state) {
    auto y = la::dispatch::SpmmBiasAct(adj, x, &addend, la::Act::kRelu);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * d);
  state.SetLabel(la::IsaName(la::ActiveIsa()));
}
BENCHMARK(BM_SpMMBiasActFused);

void BM_SpMMBiasActUnfused(benchmark::State& state) {
  const size_t d = 32;
  const auto& adj = SharedSparse();
  Rng rng(3);
  auto x = la::Matrix::Randn(adj.cols(), d, &rng);
  auto addend = la::Matrix::Randn(adj.rows(), d, &rng);
  for (auto _ : state) {
    auto y = la::dispatch::Spmm(adj, x);
    y.Add(addend, 1.0f);
    y = la::dispatch::MapAct(y, la::Act::kRelu);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * d);
}
BENCHMARK(BM_SpMMBiasActUnfused);

// Shared dataset fixture (generated once).
const datagen::Dataset& SharedDataset() {
  static const datagen::Dataset ds =
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(2000));
  return ds;
}

void BM_ScenarioGeneration(benchmark::State& state) {
  auto cfg = datagen::ScenarioConfig::D1Like(
      static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto ds = datagen::GenerateScenario(cfg);
    benchmark::DoNotOptimize(ds.logs.data());
    state.counters["logs"] = static_cast<double>(ds.logs.size());
  }
}
BENCHMARK(BM_ScenarioGeneration)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_BnConstruction(benchmark::State& state) {
  const auto& ds = SharedDataset();
  for (auto _ : state) {
    storage::EdgeStore edges;
    bn::BnBuilder builder(bn::BnConfig{}, &edges);
    builder.BuildFromLogs(ds.logs);
    benchmark::DoNotOptimize(edges.TotalEdges());
  }
  state.SetItemsProcessed(state.iterations() * ds.logs.size());
}
BENCHMARK(BM_BnConstruction)->Unit(benchmark::kMillisecond);

const storage::EdgeStore& SharedEdges() {
  static const storage::EdgeStore* edges = [] {
    auto* e = new storage::EdgeStore();
    bn::BnBuilder(bn::BnConfig{}, e).BuildFromLogs(SharedDataset().logs);
    return e;
  }();
  return *edges;
}

void BM_SnapshotBuild(benchmark::State& state) {
  const auto& ds = SharedDataset();
  const auto& edges = SharedEdges();
  bn::SnapshotOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto snap = bn::BnSnapshot::Build(
        edges, static_cast<int>(ds.users.size()), options);
    benchmark::DoNotOptimize(snap->TotalEdges());
    state.counters["bytes"] = static_cast<double>(snap->MemoryBytes());
  }
}
BENCHMARK(BM_SnapshotBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SubgraphSampling(benchmark::State& state) {
  const auto& ds = SharedDataset();
  bn::GraphView net(bn::BnSnapshot::Build(
      SharedEdges(), static_cast<int>(ds.users.size())));
  bn::SubgraphSampler sampler(net, bn::SamplerConfig{});
  UserId uid = 0;
  for (auto _ : state) {
    auto sg = sampler.SampleOne(uid);
    benchmark::DoNotOptimize(sg.nodes.data());
    uid = (uid + 17) % ds.users.size();
  }
}
BENCHMARK(BM_SubgraphSampling);

void BM_StatFeatures(benchmark::State& state) {
  const auto& ds = SharedDataset();
  static storage::LogStore store;
  if (store.size() == 0) store.AppendBatch(ds.logs);
  UserId uid = 0;
  for (auto _ : state) {
    auto f = features::ComputeStatFeatures(
        store, uid, ds.users[uid].application_time + kDay);
    benchmark::DoNotOptimize(f.data());
    uid = (uid + 13) % ds.users.size();
  }
}
BENCHMARK(BM_StatFeatures);

void BM_HagForward(benchmark::State& state) {
  const auto& ds = SharedDataset();
  static std::unique_ptr<core::PreparedData> data;
  if (!data) {
    datagen::Dataset copy = ds;
    data = core::PrepareData(std::move(copy), core::PipelineConfig{});
  }
  benchx::BenchScale scale;
  core::Hag model(benchx::MakeHagConfig(scale, 1));
  model.Init(static_cast<int>(data->features.cols()));
  auto batch = core::MakeBatch(*data, data->test_uids, bn::SamplerConfig{});
  for (auto _ : state) {
    auto logits = model.Logits(batch, /*training=*/false, nullptr);
    benchmark::DoNotOptimize(logits->value.data());
  }
  state.counters["batch_nodes"] = static_cast<double>(batch.num_nodes());
}
BENCHMARK(BM_HagForward)->Unit(benchmark::kMillisecond);

// Tape-free counterpart of BM_HagForward: same trained weights, same
// batch, but EmbedInference/LogitsInference on raw matrices (no Node
// allocation, no backward closures). The ratio of the two is the
// autograd-tape overhead the serving path saves.
void BM_HagForwardInference(benchmark::State& state) {
  const auto& ds = SharedDataset();
  static std::unique_ptr<core::PreparedData> data;
  if (!data) {
    datagen::Dataset copy = ds;
    data = core::PrepareData(std::move(copy), core::PipelineConfig{});
  }
  benchx::BenchScale scale;
  core::Hag model(benchx::MakeHagConfig(scale, 1));
  model.Init(static_cast<int>(data->features.cols()));
  auto batch = core::MakeBatch(*data, data->test_uids, bn::SamplerConfig{});
  for (auto _ : state) {
    auto logits = model.LogitsInference(batch);
    benchmark::DoNotOptimize(logits.data());
  }
  state.counters["batch_nodes"] = static_cast<double>(batch.num_nodes());
}
BENCHMARK(BM_HagForwardInference)->Unit(benchmark::kMillisecond);

void BM_GbdtFit(benchmark::State& state) {
  Rng rng(3);
  const int n = 4000, d = 30;
  la::Matrix x = la::Matrix::Randn(n, d, &rng);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) y[i] = x(i, 0) + x(i, 1) > 0.5f;
  ml::GbdtConfig cfg;
  cfg.num_trees = 30;
  for (auto _ : state) {
    ml::Gbdt model(cfg);
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.num_trees());
  }
  state.SetItemsProcessed(state.iterations() * n * d * cfg.num_trees);
}
BENCHMARK(BM_GbdtFit)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the run is Release-gated
// like every other bench and the JSON context records which kernel ISA
// the dispatch cells ran on — check_bench_regression.py keys its SIMD
// floor gates on "turbo_best_isa" and skips them on scalar-only hosts.
int main(int argc, char** argv) {
  turbo::benchx::RequireReleaseBuild();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("turbo_best_isa",
                              la::IsaName(la::BestIsa()));
  benchmark::AddCustomContext("turbo_active_isa",
                              la::IsaName(la::ActiveIsa()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
