// Durability study (DESIGN.md "Durability & recovery"): what does a BN
// server restart cost with checkpoints + WAL versus rebuilding from the
// raw log stream?
//
//   cold rebuild    fresh server re-ingests every log and re-runs the
//                   full window-job schedule — the only option before
//                   durable state existed.
//   recovery        load checkpoint.bin (exact CSR/weight bits, no
//                   jobs) + replay the ~1h WAL tail through the engine.
//
// The recovered server is CHECKed bit-identical to the writer before
// any number is reported. The headline acceptance number: recovery must
// be >= 10x faster than the cold rebuild — the checkpoint load is
// O(state), not O(history), and the WAL tail is one window of traffic.
//
// Writes BENCH_recovery.json (consumed by
// scripts/check_bench_regression.py; `hardware_threads` recorded so the
// gate skips on mismatched boxes).
//
//   ./bench_recovery [--users=N] [--logs=K] [--days=D] [--rounds=R]
//                    [--dir=STATE_DIR] [--out=BENCH_recovery.json]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "server/bn_server.h"
#include "storage/wal.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace turbo::benchx {
namespace {

/// Community-structured co-occurrence traffic (the bench_window_jobs
/// shape), sorted by time so the driver can interleave hourly advances.
BehaviorLogList MakeLogs(uint64_t seed, int users, size_t n,
                         SimTime span) {
  const BehaviorType types[] = {BehaviorType::kIpv4, BehaviorType::kImei,
                                BehaviorType::kWifiMac};
  constexpr int kCommunity = 4;
  constexpr ValueId kNoiseValues = 65536;
  Rng rng(seed);
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BehaviorLog log;
    log.uid = static_cast<UserId>(rng.NextUint(users));
    log.type = types[rng.NextUint(3)];
    log.value = rng.NextBool(0.999)
                    ? kNoiseValues + log.uid / kCommunity
                    : rng.NextZipf(kNoiseValues, 0.5);
    log.time =
        static_cast<SimTime>(rng.NextUint(static_cast<uint64_t>(span)));
    logs.push_back(log);
  }
  std::sort(logs.begin(), logs.end(),
            [](const BehaviorLog& a, const BehaviorLog& b) {
              return a.time < b.time;
            });
  return logs;
}

server::BnServerConfig MakeConfig(int users, const std::string& wal_dir) {
  server::BnServerConfig cfg;
  cfg.num_users = users;
  cfg.snapshot_refresh = kHour;
  cfg.wal_dir = wal_dir;
  return cfg;
}

/// Drives `server` through [from, to): ingest each hour's logs, then
/// advance to the hour boundary — the live-server loop.
void Drive(server::BnServer* server, const BehaviorLogList& logs,
           SimTime from, SimTime to) {
  size_t i = 0;
  while (i < logs.size() && logs[i].time < from) ++i;
  for (SimTime h = from + kHour; h <= to; h += kHour) {
    while (i < logs.size() && logs[i].time < h) {
      server->Ingest(logs[i]);
      ++i;
    }
    server->AdvanceTo(h);
  }
}

void CheckIdentical(const server::BnServer& a, const server::BnServer& b,
                    int users) {
  TURBO_CHECK_EQ(a.now(), b.now());
  TURBO_CHECK_EQ(a.jobs_run(), b.jobs_run());
  TURBO_CHECK_EQ(a.logs().size(), b.logs().size());
  TURBO_CHECK_EQ(a.snapshot_version(), b.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TURBO_CHECK_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t));
    for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
      const auto& an = a.edges().Neighbors(t, u);
      const auto& bn = b.edges().Neighbors(t, u);
      TURBO_CHECK_EQ(an.size(), bn.size());
      for (const auto& [v, e] : an) {
        auto it = bn.find(v);
        TURBO_CHECK(it != bn.end());
        TURBO_CHECK_MSG(e.weight == it->second.weight,
                        "recovered state diverged on edge "
                            << u << "-" << v << " type " << t);
      }
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int users = flags.GetInt("users", 20000);
  const size_t num_logs =
      static_cast<size_t>(flags.GetInt("logs", 4000000));
  const int days = flags.GetInt("days", 4);
  const int rounds = flags.GetInt("rounds", 2);
  const std::string out = flags.GetString("out", "BENCH_recovery.json");
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "bench_recovery_wal")
              .string();
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const SimTime span = days * kDay;
  const SimTime checkpoint_at = span - kHour;  // WAL tail = final hour

  std::printf("== durable state: checkpoint + WAL tail vs cold rebuild ==\n");
  std::printf("users=%d, logs=%zu over %dd, tail=1h, %d hardware threads\n\n",
              users, num_logs, days, hw);

  const BehaviorLogList logs = MakeLogs(0x3ec0ULL, users, num_logs, span);

  // The writer: live traffic with the WAL on, checkpoint one hour
  // before the end, then the tail hour that only the WAL captures.
  std::filesystem::remove_all(dir);
  server::BnServer writer(MakeConfig(users, dir));
  Drive(&writer, logs, 0, checkpoint_at);
  Stopwatch ckpt_sw;
  const Status ckpt = writer.Checkpoint(dir);
  const double checkpoint_write_s = ckpt_sw.ElapsedSeconds();
  TURBO_CHECK_MSG(ckpt.ok(), "checkpoint failed: " << ckpt.ToString());
  Drive(&writer, logs, checkpoint_at, span);
  const size_t checkpoint_bytes =
      std::filesystem::file_size(dir + "/checkpoint.bin");

  // Cold rebuild: what a restart costs without durable state.
  double cold_s = 1e30;
  std::unique_ptr<server::BnServer> cold;
  for (int r = 0; r < rounds; ++r) {
    cold = std::make_unique<server::BnServer>(MakeConfig(users, ""));
    Stopwatch sw;
    Drive(cold.get(), logs, 0, span);
    cold_s = std::min(cold_s, sw.ElapsedSeconds());
  }
  CheckIdentical(writer, *cold, users);

  // Recovery: checkpoint load + WAL-tail replay, bit-identical again.
  double recovery_s = 1e30;
  uint64_t replayed = 0;
  // One registry per round (fresh counters); declared before the server
  // so it outlives the resolved metric handles the server keeps.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  std::unique_ptr<server::BnServer> recovered;
  for (int r = 0; r < rounds; ++r) {
    registries.push_back(std::make_unique<obs::MetricsRegistry>());
    server::BnServerConfig cfg = MakeConfig(users, dir);
    cfg.metrics = registries.back().get();
    recovered = std::make_unique<server::BnServer>(cfg);
    Stopwatch sw;
    const Status s = recovered->Recover(dir);
    recovery_s = std::min(recovery_s, sw.ElapsedSeconds());
    TURBO_CHECK_MSG(s.ok(), "recovery failed: " << s.ToString());
    replayed = registries.back()
                   ->GetCounter("bn_wal_replayed_records_total")
                   ->value();
  }
  CheckIdentical(writer, *recovered, users);

  const double speedup = cold_s / std::max(recovery_s, 1e-9);
  const double replay_rate = replayed / std::max(recovery_s, 1e-9);

  TablePrinter table({"path", "seconds", "notes"});
  table.AddRow({"cold rebuild", StrFormat("%.3f", cold_s),
                StrFormat("%zu logs, full job schedule", num_logs)});
  table.AddRow({"checkpoint write", StrFormat("%.3f", checkpoint_write_s),
                StrFormat("%.1f MB", checkpoint_bytes / 1e6)});
  table.AddRow({"recovery", StrFormat("%.3f", recovery_s),
                StrFormat("load + %llu-record WAL tail",
                          static_cast<unsigned long long>(replayed))});
  table.Print();
  std::printf("\nrecovered state bit-identical to the uncrashed writer\n");
  std::printf("recovery speedup vs cold rebuild: %.1fx (target >= 10x)\n",
              speedup);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"recovery\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"logs\": " << num_logs << ",\n"
    << "  \"days\": " << days << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"checkpoint_bytes\": " << checkpoint_bytes << ",\n"
    << "  \"checkpoint_write_s\": " << checkpoint_write_s << ",\n"
    << "  \"wal_tail_records\": " << replayed << ",\n"
    << "  \"cold_rebuild_s\": " << cold_s << ",\n"
    << "  \"recovery_s\": " << recovery_s << ",\n"
    << "  \"wal_replay_records_per_s\": " << replay_rate << ",\n"
    << "  \"recovery_speedup\": " << speedup << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  std::filesystem::remove_all(dir);
  return speedup >= 10.0 ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
