// Table IV — comparison on the larger, majority-positive D2-like dataset:
// GraphSAGE (the best baseline from Table III) against HAG.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 5000);
  scale.rounds = flags.GetInt("rounds", 1);

  std::printf("== Table IV: performance comparison on D2 (%%) ==\n");
  std::printf("users=%d rounds=%d epochs=%d\n\n", scale.users, scale.rounds,
              scale.epochs);

  auto rounds = benchx::PrepareRounds(
      datagen::ScenarioConfig::D2Like(scale.users), scale.rounds);
  std::printf("dataset: %zu users (%d positive), BN %zu edges\n\n",
              rounds[0]->dataset.users.size(), rounds[0]->dataset.NumFraud(),
              rounds[0]->network.TotalEdges());

  TablePrinter table({"Methods", "Precision", "Recall", "F1", "F2", "AUC"});
  for (const char* name : {"G-SAGE", "HAG"}) {
    auto res = benchx::EvaluateMethod(name, rounds, scale);
    table.AddRow(name,
                 {res.mean.precision_pct, res.mean.recall_pct,
                  res.mean.f1_pct, res.mean.f2_pct, res.mean.auc_pct});
    std::printf("%-7s done (AUC %.2f)\n", name, res.mean.auc_pct);
  }
  std::printf("\n");
  table.Print();
  std::printf("\npaper Table IV: G-SAGE P 93.17 / R 96.09 / F1 94.61 / AUC "
              "97.31;  HAG P 95.88 / R 97.46 / F1 95.50 / AUC 98.28\n");
  return 0;
}
