// Incremental-publish study (DESIGN.md "Incremental snapshots & delta
// checkpoints"): does snapshot publication and checkpoint persistence
// cost scale with per-epoch churn instead of graph size?
//
// One writer server runs with incremental snapshots + delta checkpoints
// (the production configuration, WAL on); an ablation server replays
// the identical traffic with both disabled, so every epoch yields a
// full-rebuild publish time and the published snapshots can be CHECKed
// bit-identical between the two paths. After a seed phase populates the
// whole graph and a full checkpoint is written, each subsequent hour
// confines its traffic to a cohort of co-occurrence communities
// covering a chosen fraction of the user base (the eBay observation the
// refactor exploits: per-window active users are a small correlated
// cohort, not a uniform resample of the whole graph), then publishes
// and checkpoints. Because the hierarchical windows (1..12h + 1d) fire
// at multiples of their length and re-touch multi-hour unions, only
// "clean" hours — where nothing but the base 1-hour window fires, so
// the publish sees exactly one cohort of churn — count as measurement
// points for a fraction; all hours are still driven, checkpointed, and
// reported in the JSON sweep.
//
// Headline acceptance numbers at the 5% churn row: incremental publish
// >= 5x faster than the full rebuild AND the delta checkpoint >= 5x
// smaller than the full checkpoint. The run ends by recovering from
// base + delta chain + WAL tail and CHECKing the result bit-identical
// to the uncrashed writer.
//
// Writes BENCH_incremental.json (consumed by
// scripts/check_bench_regression.py; `hardware_threads` recorded so the
// gate skips on mismatched boxes).
//
//   ./bench_incremental [--users=N] [--seed_logs=K] [--seed_days=D]
//                       [--epochs=E] [--cohort=block|spread]
//                       [--dir=STATE_DIR] [--out=BENCH_incremental.json]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "server/bn_server.h"
#include "storage/wal.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace turbo::benchx {
namespace {

constexpr int kCommunity = 4;
constexpr ValueId kNoiseValues = 65536;
constexpr int kLogsPerActiveUser = 40;

BehaviorLog CommunityLog(Rng* rng, UserId uid, SimTime time) {
  const BehaviorType types[] = {BehaviorType::kIpv4, BehaviorType::kImei,
                                BehaviorType::kWifiMac};
  BehaviorLog log;
  log.uid = uid;
  log.type = types[rng->NextUint(3)];
  log.value = rng->NextBool(0.999)
                  ? kNoiseValues + uid / kCommunity
                  : rng->NextZipf(kNoiseValues, 0.5);
  log.time = time;
  return log;
}

/// Seed traffic: the bench_recovery community workload — every user
/// active, so the seed phase populates rows across the whole id space.
BehaviorLogList MakeSeedLogs(uint64_t seed, int users, size_t n,
                             SimTime span) {
  Rng rng(seed);
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    logs.push_back(CommunityLog(
        &rng, static_cast<UserId>(rng.NextUint(users)),
        static_cast<SimTime>(rng.NextUint(static_cast<uint64_t>(span)))));
  }
  std::sort(logs.begin(), logs.end(),
            [](const BehaviorLog& a, const BehaviorLog& b) {
              return a.time < b.time;
            });
  return logs;
}

/// One hour of cohort traffic in [from, to): the active cohort is
/// `fraction` of the communities — a contiguous block at a rotating
/// start ("block", correlated cohorts as in real diurnal traffic) or a
/// uniform random subset ("spread", the adversarial layout where churn
/// dirties the maximum number of row groups).
BehaviorLogList MakeChurnLogs(uint64_t seed, int users, double fraction,
                              bool block, SimTime from, SimTime to) {
  const int num_comms = users / kCommunity;
  const int active = std::max(
      1, static_cast<int>(static_cast<double>(num_comms) * fraction));
  Rng rng(seed);
  std::vector<int> comms;
  comms.reserve(active);
  if (block) {
    const int start = static_cast<int>(rng.NextUint(num_comms));
    for (int i = 0; i < active; ++i) comms.push_back((start + i) % num_comms);
  } else {
    std::unordered_set<int> seen;
    while (static_cast<int>(comms.size()) < active) {
      const int c = static_cast<int>(rng.NextUint(num_comms));
      if (seen.insert(c).second) comms.push_back(c);
    }
  }
  const size_t n = static_cast<size_t>(active) * kCommunity *
                   kLogsPerActiveUser;
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int c = comms[rng.NextUint(comms.size())];
    const UserId uid = static_cast<UserId>(
        c * kCommunity + static_cast<int>(rng.NextUint(kCommunity)));
    logs.push_back(CommunityLog(
        &rng, uid,
        from + static_cast<SimTime>(rng.NextUint(
                   static_cast<uint64_t>(to - from)))));
  }
  std::sort(logs.begin(), logs.end(),
            [](const BehaviorLog& a, const BehaviorLog& b) {
              return a.time < b.time;
            });
  return logs;
}

/// True when the only window job firing at hour boundary `h` is the
/// base 1-hour window, so the publish at `h` sees exactly the preceding
/// hour's cohort churn. The hierarchical windows (1..12h + 1d) fire at
/// multiples of their length and re-touch every node active inside
/// them; hours whose index has a divisor in [2, 12] therefore carry
/// multi-hour churn unions and are driven but not used as measurement
/// points. (Every multiple of 24 is also a multiple of 12.)
bool CleanHour(int64_t h) {
  for (int64_t w = 2; w <= 12; ++w) {
    if (h % w == 0) return false;
  }
  return true;
}

server::BnServerConfig MakeConfig(int users, const std::string& wal_dir,
                                  bool incremental) {
  server::BnServerConfig cfg;
  cfg.num_users = users;
  cfg.snapshot_refresh = kHour;
  cfg.wal_dir = wal_dir;
  cfg.incremental_snapshots = incremental;
  cfg.delta_checkpoints = incremental;
  return cfg;
}

/// Ingests `logs` into both servers and advances both to each hour
/// boundary in (from, to] — the live-server loop, in lockstep.
void DriveBoth(server::BnServer* a, server::BnServer* b,
               const BehaviorLogList& logs, SimTime from, SimTime to) {
  size_t i = 0;
  while (i < logs.size() && logs[i].time < from) ++i;
  for (SimTime h = from + kHour; h <= to; h += kHour) {
    while (i < logs.size() && logs[i].time < h) {
      a->Ingest(logs[i]);
      b->Ingest(logs[i]);
      ++i;
    }
    a->AdvanceTo(h);
    b->AdvanceTo(h);
  }
}

/// Published snapshots must be bit-identical between the incremental
/// and the full-rebuild path — float equality, not approximate.
void CheckSnapshotsIdentical(const server::BnServer& inc,
                             const server::BnServer& full) {
  const auto a = inc.snapshot();
  const auto b = full.snapshot();
  TURBO_CHECK(a != nullptr && b != nullptr);
  TURBO_CHECK_EQ(a->version(), b->version());
  TURBO_CHECK_EQ(a->num_nodes(), b->num_nodes());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TURBO_CHECK_EQ(a->NumEdges(t), b->NumEdges(t));
    for (UserId u = 0; u < static_cast<UserId>(a->num_nodes()); ++u) {
      const auto na = a->Neighbors(t, u);
      const auto nb = b->Neighbors(t, u);
      TURBO_CHECK_EQ(na.size(), nb.size());
      for (size_t i = 0; i < na.size(); ++i) {
        TURBO_CHECK_EQ(na.id(i), nb.id(i));
        TURBO_CHECK_MSG(na.weights()[i] == nb.weights()[i],
                        "incremental publish diverged on node "
                            << u << " type " << t << " slot " << i);
      }
    }
  }
}

void CheckServersIdentical(const server::BnServer& a,
                           const server::BnServer& b, int users) {
  TURBO_CHECK_EQ(a.now(), b.now());
  TURBO_CHECK_EQ(a.jobs_run(), b.jobs_run());
  TURBO_CHECK_EQ(a.logs().size(), b.logs().size());
  TURBO_CHECK_EQ(a.snapshot_version(), b.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TURBO_CHECK_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t));
    for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
      const auto& an = a.edges().Neighbors(t, u);
      const auto& bn = b.edges().Neighbors(t, u);
      TURBO_CHECK_EQ(an.size(), bn.size());
      for (const auto& [v, e] : an) {
        auto it = bn.find(v);
        TURBO_CHECK(it != bn.end());
        TURBO_CHECK_MSG(e.weight == it->second.weight,
                        "recovered state diverged on edge "
                            << u << "-" << v << " type " << t);
      }
    }
  }
}

struct EpochRow {
  double fraction = 0.0;
  int64_t hour = 0;
  bool clean = false;
  uint64_t touched_rows = 0;
  bool incremental_path = false;
  double incremental_ms = 0.0;
  double full_ms = 0.0;
  uint64_t checkpoint_bytes = 0;
  uint64_t full_checkpoint_bytes = 0;
  bool delta = false;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int users = flags.GetInt("users", 20000);
  const size_t seed_logs =
      static_cast<size_t>(flags.GetInt("seed_logs", 2000000));
  const int seed_days = flags.GetInt("seed_days", 2);
  const int epochs = flags.GetInt("epochs", 3);
  const bool block = flags.GetString("cohort", "block") != "spread";
  const std::string out =
      flags.GetString("out", "BENCH_incremental.json");
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "bench_incremental_wal")
              .string();
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<double> fractions = {0.01, 0.05, 0.10, 0.25};
  constexpr double kHeadlineFraction = 0.05;

  std::printf("== incremental publish + delta checkpoints vs full ==\n");
  std::printf(
      "users=%d, seed=%zu logs over %dd, %d epochs/fraction, %s cohorts, "
      "%d hardware threads\n\n",
      users, seed_logs, seed_days, epochs, block ? "block" : "spread", hw);

  // Seed phase: identical traffic through the writer (incremental +
  // delta checkpoints + WAL) and the full-rebuild ablation server.
  std::filesystem::remove_all(dir);
  obs::MetricsRegistry writer_registry, ablation_registry;
  server::BnServerConfig writer_cfg =
      MakeConfig(users, dir, /*incremental=*/true);
  writer_cfg.metrics = &writer_registry;
  server::BnServerConfig ablation_cfg =
      MakeConfig(users, "", /*incremental=*/false);
  ablation_cfg.metrics = &ablation_registry;
  server::BnServer writer(writer_cfg);
  server::BnServer ablation(ablation_cfg);
  const SimTime seed_span = seed_days * kDay;
  DriveBoth(&writer, &ablation,
            MakeSeedLogs(0x1ac5ULL, users, seed_logs, seed_span), 0,
            seed_span);
  CheckSnapshotsIdentical(writer, ablation);

  // The full base checkpoint every delta is measured against.
  Stopwatch full_sw;
  TURBO_CHECK(writer.Checkpoint(dir).ok());
  const double full_checkpoint_s = full_sw.ElapsedSeconds();
  const uint64_t full_bytes = static_cast<uint64_t>(
      std::filesystem::file_size(dir + "/checkpoint.bin"));

  const obs::Histogram* inc_ms =
      writer_registry.GetHistogram("bn_snapshot_incremental_ms");
  const obs::Histogram* inc_build_ms =
      writer_registry.GetHistogram("bn_snapshot_build_ms");
  const obs::Gauge* touched_g =
      writer_registry.GetGauge("bn_snapshot_touched_nodes");
  const obs::Histogram* full_ms =
      ablation_registry.GetHistogram("bn_snapshot_build_ms");
  const obs::Counter* incrementals =
      writer_registry.GetCounter("bn_snapshot_incremental_total");

  // Measured epochs: every hour drives one hour of cohort traffic,
  // publishes on the boundary, and checkpoints; each fraction runs
  // until `epochs` of its hours were clean measurement points. The
  // writer's publish cost per hour is the sum-delta of its two publish
  // histograms, so a fallback full rebuild (expected whenever a large
  // window re-touches a multi-hour union) is charged honestly to the
  // incremental column.
  std::vector<EpochRow> rows;
  SimTime now = seed_span;
  uint64_t seed = 0xc0ffeeULL;
  for (double fraction : fractions) {
    int driven = 0;
    for (int clean_seen = 0; clean_seen < epochs;) {
      // Chain-cap and size-heuristic fulls are normal (every
      // max_delta_chain-th checkpoint is a full); a fraction only needs
      // `epochs` hours that published incrementally AND wrote a delta.
      TURBO_CHECK_MSG(++driven <= 200,
                      "no measurable hours at fraction " << fraction);
      const double inc_before = inc_ms->Sum() + inc_build_ms->Sum();
      const double full_before = full_ms->Sum();
      const uint64_t incrementals_before = incrementals->value();
      const auto deltas_before = storage::ListCheckpointDeltas(dir);
      DriveBoth(&writer, &ablation,
                MakeChurnLogs(++seed, users, fraction, block, now,
                              now + kHour),
                now, now + kHour);
      now += kHour;
      CheckSnapshotsIdentical(writer, ablation);

      EpochRow row;
      row.fraction = fraction;
      row.hour = now / kHour;
      row.clean = CleanHour(row.hour);
      row.incremental_path = incrementals->value() > incrementals_before;
      row.touched_rows = static_cast<uint64_t>(touched_g->value());
      row.incremental_ms = inc_ms->Sum() + inc_build_ms->Sum() - inc_before;
      row.full_ms = full_ms->Sum() - full_before;
      TURBO_CHECK(writer.Checkpoint(dir).ok());
      const auto deltas_after = storage::ListCheckpointDeltas(dir);
      row.delta = deltas_after.size() > deltas_before.size();
      row.checkpoint_bytes = static_cast<uint64_t>(
          row.delta ? std::filesystem::file_size(storage::CheckpointDeltaPath(
                          dir, deltas_after.back()))
                    : std::filesystem::file_size(dir + "/checkpoint.bin"));
      row.full_checkpoint_bytes = static_cast<uint64_t>(
          std::filesystem::file_size(dir + "/checkpoint.bin"));
      rows.push_back(row);
      if (row.clean && row.delta && row.incremental_path) ++clean_seen;
    }
  }

  // One more cohort hour left only in the WAL, then recover through
  // base + delta chain + tail and demand the writer's exact bits.
  DriveBoth(&writer, &ablation,
            MakeChurnLogs(++seed, users, kHeadlineFraction, block, now,
                          now + kHour),
            now, now + kHour);
  now += kHour;
  server::BnServer recovered(MakeConfig(users, dir, /*incremental=*/true));
  const Status rec = recovered.Recover(dir);
  TURBO_CHECK_MSG(rec.ok(), "recovery failed: " << rec.ToString());
  CheckServersIdentical(writer, recovered, users);

  // The printed table shows the clean measurement points; the JSON
  // carries every driven hour, including the multi-window union hours.
  TablePrinter table({"churn", "hour", "path", "touched rows",
                      "incremental ms", "full ms", "speedup", "checkpoint",
                      "bytes"});
  double head_inc_ms = 1e30, head_full_ms = 1e30;
  double checkpoint_shrink = 1e30;
  for (const EpochRow& row : rows) {
    if (!row.clean) continue;
    table.AddRow({StrFormat("%.0f%%", row.fraction * 100),
                  StrFormat("%lld", static_cast<long long>(row.hour)),
                  row.incremental_path ? "patch" : "rebuild",
                  StrFormat("%llu",
                            static_cast<unsigned long long>(row.touched_rows)),
                  StrFormat("%.2f", row.incremental_ms),
                  StrFormat("%.2f", row.full_ms),
                  StrFormat("%.1fx", row.full_ms /
                                         std::max(row.incremental_ms, 1e-9)),
                  row.delta ? "delta" : "full",
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        row.checkpoint_bytes))});
    if (row.fraction == kHeadlineFraction && row.delta &&
        row.incremental_path) {
      head_inc_ms = std::min(head_inc_ms, row.incremental_ms);
      head_full_ms = std::min(head_full_ms, row.full_ms);
      checkpoint_shrink = std::min(
          checkpoint_shrink,
          static_cast<double>(row.full_checkpoint_bytes) /
              static_cast<double>(std::max<uint64_t>(row.checkpoint_bytes,
                                                     1)));
    }
  }
  table.Print();

  const double publish_speedup =
      head_full_ms / std::max(head_inc_ms, 1e-9);
  std::printf("\nall published snapshots bit-identical to full rebuilds; "
              "recovered state bit-identical to the writer\n");
  std::printf("full checkpoint: %.1f MB in %.3fs\n", full_bytes / 1e6,
              full_checkpoint_s);
  std::printf("at %.0f%% churn: publish %.1fx faster, delta checkpoint "
              "%.1fx smaller (targets >= 5x)\n",
              kHeadlineFraction * 100, publish_speedup, checkpoint_shrink);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"incremental\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"seed_logs\": " << seed_logs << ",\n"
    << "  \"seed_days\": " << seed_days << ",\n"
    << "  \"epochs_per_fraction\": " << epochs << ",\n"
    << "  \"cohort\": \"" << (block ? "block" : "spread") << "\",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"full_checkpoint_bytes\": " << full_bytes << ",\n"
    << "  \"full_checkpoint_s\": " << full_checkpoint_s << ",\n"
    << "  \"sweep\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const EpochRow& row = rows[i];
    f << "    {\"churn_fraction\": " << row.fraction << ", \"hour\": "
      << row.hour << ", \"clean\": " << (row.clean ? "true" : "false")
      << ", \"path\": \"" << (row.incremental_path ? "patch" : "rebuild")
      << "\", \"touched_rows\": " << row.touched_rows
      << ", \"incremental_ms\": " << row.incremental_ms
      << ", \"full_ms\": " << row.full_ms << ", \"checkpoint_kind\": \""
      << (row.delta ? "delta" : "full")
      << "\", \"checkpoint_bytes\": " << row.checkpoint_bytes
      << ", \"full_checkpoint_bytes\": " << row.full_checkpoint_bytes
      << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ],\n"
    << "  \"publish_speedup\": " << publish_speedup << ",\n"
    << "  \"checkpoint_shrink\": " << checkpoint_shrink << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  std::filesystem::remove_all(dir);
  return publish_speedup >= 5.0 && checkpoint_shrink >= 5.0 ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
