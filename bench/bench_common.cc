#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "gnn/sage.h"

// Stamped by bench/CMakeLists.txt with the generator's $<CONFIG>; empty
// when the build directory was configured without CMAKE_BUILD_TYPE.
#ifndef TURBO_BENCH_BUILD_TYPE
#define TURBO_BENCH_BUILD_TYPE ""
#endif

namespace turbo::benchx {

void RequireReleaseBuild() {
  const std::string build_type = TURBO_BENCH_BUILD_TYPE;
#if defined(__OPTIMIZE__)
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  // Release and RelWithDebInfo both qualify; MinSizeRel trades speed for
  // size, so it does not.
  const bool release_like =
      optimized &&
      (build_type == "Release" || build_type == "RelWithDebInfo");
  if (release_like) return;
  std::fprintf(stderr,
               "bench built from a non-Release configuration "
               "(CMAKE_BUILD_TYPE=\"%s\", optimization %s) — numbers "
               "would be meaningless.\n",
               build_type.c_str(), optimized ? "on" : "off");
  if (std::getenv("TURBO_ALLOW_DEBUG_BENCH") != nullptr) {
    std::fprintf(stderr,
                 "TURBO_ALLOW_DEBUG_BENCH set: continuing anyway; do NOT "
                 "record these numbers.\n");
    return;
  }
  std::fprintf(stderr,
               "Reconfigure with -DCMAKE_BUILD_TYPE=Release (or set "
               "TURBO_ALLOW_DEBUG_BENCH=1 to smoke-test).\n");
  std::exit(1);
}

Flags::Flags(int argc, char** argv) {
  RequireReleaseBuild();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "1";
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

int Flags::GetInt(const std::string& key, int def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoi(it->second);
}

double Flags::GetDouble(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second != "0" && it->second != "false";
}

BenchScale BenchScale::FromFlags(const Flags& flags) {
  BenchScale s;
  if (flags.GetBool("paper_scale", false)) {
    s.users = 67072;
    s.hidden = {128, 64};
    s.attention_dim = 64;
    s.mlp_hidden = 32;
    s.epochs = 100;
  }
  s.users = flags.GetInt("users", s.users);
  s.epochs = flags.GetInt("epochs", s.epochs);
  s.rounds = flags.GetInt("rounds", s.rounds);
  return s;
}

gnn::GnnConfig MakeGnnConfig(const BenchScale& s, uint64_t seed) {
  gnn::GnnConfig cfg;
  cfg.hidden = s.hidden;
  cfg.attention_dim = s.attention_dim;
  cfg.mlp_hidden = s.mlp_hidden;
  cfg.seed = seed;
  return cfg;
}

core::HagConfig MakeHagConfig(const BenchScale& s, uint64_t seed,
                              bool use_sao, bool use_cfo) {
  core::HagConfig cfg;
  static_cast<gnn::GnnConfig&>(cfg) = MakeGnnConfig(s, seed);
  cfg.use_sao = use_sao;
  cfg.use_cfo = use_cfo;
  return cfg;
}

gnn::TrainConfig MakeTrainConfig(const BenchScale& s, uint64_t seed) {
  gnn::TrainConfig cfg;
  cfg.epochs = s.epochs;
  cfg.lr = 1e-3f;
  cfg.seed = seed;
  return cfg;
}

const std::vector<std::string>& TableThreeMethods() {
  static const std::vector<std::string> kMethods = {
      "LR",  "SVM", "GBDT", "DNN",  "GCN",  "G-SAGE",
      "GAT", "BLP", "DTX1", "DTX2", "HAG"};
  return kMethods;
}

namespace {

std::vector<double> RunFeatureModel(ml::BinaryClassifier* model,
                                    const core::PreparedData& data) {
  model->Fit(data.FeaturesFor(data.train_uids),
             data.LabelsFor(data.train_uids));
  return model->PredictProba(data.FeaturesFor(data.test_uids));
}

const graphfe::BipartiteGraph& CachedBipartite(
    const core::PreparedData& data) {
  // The bipartite graph depends only on the dataset; cache per dataset
  // pointer so DTX1/DTX2/BLP share it within one bench process.
  static const core::PreparedData* cached_for = nullptr;
  static std::unique_ptr<graphfe::BipartiteGraph> graph;
  if (cached_for != &data) {
    graph = std::make_unique<graphfe::BipartiteGraph>(
        graphfe::BipartiteGraph::FromLogs(
            data.dataset.logs, static_cast<int>(data.dataset.users.size())));
    cached_for = &data;
  }
  return *graph;
}

}  // namespace

std::vector<double> RunMethod(const std::string& name,
                              const core::PreparedData& data,
                              const BenchScale& scale, uint64_t seed) {
  const auto y_train = data.LabelsFor(data.train_uids);
  if (name == "LR") {
    ml::LogisticRegressionConfig cfg;
    cfg.seed = seed;
    // Grid-searched like the paper's baselines; the balanced weight
    // over-fires at threshold 0.5 on 1.4% positives.
    cfg.positive_weight = 5.0;
    ml::LogisticRegression m(cfg);
    return RunFeatureModel(&m, data);
  }
  if (name == "SVM") {
    ml::LinearSvmConfig cfg;
    cfg.seed = seed;
    cfg.positive_weight = 5.0;
    ml::LinearSvm m(cfg);
    return RunFeatureModel(&m, data);
  }
  if (name == "GBDT") {
    ml::GbdtConfig cfg;
    cfg.seed = seed;
    ml::Gbdt m(cfg);
    return RunFeatureModel(&m, data);
  }
  if (name == "DNN") {
    ml::MlpConfig cfg;
    cfg.seed = seed;
    ml::Mlp m(cfg);
    return RunFeatureModel(&m, data);
  }
  // GNN baselines sample uniformly, per their papers; Turbo's BN server
  // samples by weight (SamplerConfig default).
  bn::SamplerConfig uniform_sampler;
  uniform_sampler.top_by_weight = false;
  if (name == "GCN") {
    gnn::Gcn m(MakeGnnConfig(scale, seed));
    return core::TrainAndScoreGnn(&m, data, uniform_sampler,
                                  MakeTrainConfig(scale, seed));
  }
  if (name == "G-SAGE") {
    gnn::GraphSage m(MakeGnnConfig(scale, seed));
    return core::TrainAndScoreGnn(&m, data, uniform_sampler,
                                  MakeTrainConfig(scale, seed));
  }
  if (name == "GAT") {
    gnn::Gat m(MakeGnnConfig(scale, seed));
    auto cfg = MakeTrainConfig(scale, seed);
    cfg.lr = 5e-3f;  // attention heads need a larger step (see tests)
    return core::TrainAndScoreGnn(&m, data, uniform_sampler, cfg);
  }
  if (name == "BLP") {
    graphfe::BlpConfig cfg;
    cfg.gbdt.seed = seed;
    graphfe::Blp m(cfg, CachedBipartite(data));
    m.Fit(data.features, data.train_uids, y_train);
    return m.Predict(data.features, data.test_uids);
  }
  if (name == "DTX1" || name == "DTX2") {
    graphfe::DeepTraxConfig cfg;
    cfg.gbdt.seed = seed;
    cfg.walk.seed = seed + 1;
    cfg.include_original_features = (name == "DTX2");
    graphfe::DeepTrax m(cfg, CachedBipartite(data));
    m.Fit(data.features, data.train_uids, y_train);
    return m.Predict(data.features, data.test_uids);
  }
  if (name == "HAG" || name == "SAO(-)" || name == "CFO(-)" ||
      name == "Both(-)") {
    const bool use_sao = (name == "HAG" || name == "CFO(-)");
    const bool use_cfo = (name == "HAG" || name == "SAO(-)");
    core::Hag m(MakeHagConfig(scale, seed, use_sao, use_cfo));
    return core::TrainAndScoreGnn(&m, data, bn::SamplerConfig{},
                                  MakeTrainConfig(scale, seed));
  }
  TURBO_CHECK_MSG(false, "unknown method " << name);
  return {};
}

std::vector<std::unique_ptr<core::PreparedData>> PrepareRounds(
    const datagen::ScenarioConfig& scenario, int rounds,
    core::PipelineConfig pipeline) {
  std::vector<std::unique_ptr<core::PreparedData>> out;
  for (int round = 0; round < rounds; ++round) {
    pipeline.split_seed = 7 + 13 * round;
    out.push_back(
        core::PrepareData(datagen::GenerateScenario(scenario), pipeline));
  }
  return out;
}

MethodResult EvaluateMethod(
    const std::string& name,
    const std::vector<std::unique_ptr<core::PreparedData>>& rounds,
    const BenchScale& scale, double threshold) {
  std::vector<double> p, r, f1, f2, auc;
  for (size_t round = 0; round < rounds.size(); ++round) {
    const auto& data = *rounds[round];
    const auto labels = data.LabelsFor(data.test_uids);
    auto scores = RunMethod(name, data, scale, 1000 + 31 * round);
    auto rep = metrics::Evaluate(scores, labels, threshold);
    p.push_back(rep.precision_pct);
    r.push_back(rep.recall_pct);
    f1.push_back(rep.f1_pct);
    f2.push_back(rep.f2_pct);
    auc.push_back(rep.auc_pct);
  }
  MethodResult res;
  res.mean = {metrics::Aggregate(p).mean, metrics::Aggregate(r).mean,
              metrics::Aggregate(f1).mean, metrics::Aggregate(f2).mean,
              metrics::Aggregate(auc).mean};
  res.auc_variance = metrics::Aggregate(auc).variance;
  return res;
}

}  // namespace turbo::benchx
