// Wire-transport microbench (DESIGN.md §15): what does the framed RPC
// layer cost on loopback, and how fast does the streaming WAL ship
// move bytes end to end?
//
//   rpc small     round-trips/s of a 64-byte echo call — per-call
//                 overhead of framing + CRC + syscalls.
//   rpc large     MB/s of 256 KiB echo payloads — the streaming floor
//                 of the codec itself.
//   wal ship      MB/s of ShipWalOverRpc pushing a fresh multi-segment
//                 WAL directory into a WalSinkService; the replica is
//                 CHECKed byte-identical before the number is reported.
//   reship no-op  cursor rounds/s over an already-converged replica —
//                 the steady-state cost of the Stat-based ack protocol.
//
// Writes BENCH_net.json (consumed by scripts/check_bench_regression.py).
//
//   ./bench_net [--small_calls=N] [--large_calls=N] [--ship_mb=M]
//               [--dir=STATE_DIR] [--out=BENCH_net.json]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "net/rpc.h"
#include "net/wal_stream.h"
#include "storage/wal.h"
#include "util/check.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/time_util.h"

namespace turbo::benchx {
namespace {

namespace fs = std::filesystem;

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Fills `dir` with closed WAL segments totalling ~`target_bytes`.
size_t FillWalDir(const std::string& dir, size_t target_bytes) {
  size_t total = 0;
  storage::WalOptions options;
  options.fsync = storage::WalOptions::Fsync::kNever;
  options.group_commit_records = 256;
  for (uint64_t seq = 1; total < target_bytes; ++seq) {
    storage::WalWriter w;
    TURBO_CHECK(w.Open(dir, seq, options).ok());
    for (int i = 0; i < 20000; ++i) {
      const BehaviorLog log{static_cast<UserId>(i % 4096),
                            BehaviorType::kIpv4,
                            static_cast<ValueId>(i % 9973),
                            static_cast<SimTime>(i) * kMinute};
      TURBO_CHECK(w.Append(storage::WalRecord::Ingest(log)).ok());
    }
    TURBO_CHECK(w.Close().ok());
    total += static_cast<size_t>(
        fs::file_size(storage::WalSegmentPath(dir, seq)));
  }
  return total;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int small_calls = flags.GetInt("small_calls", 20000);
  const int large_calls = flags.GetInt("large_calls", 200);
  const size_t ship_mb =
      static_cast<size_t>(flags.GetInt("ship_mb", 32));
  const std::string out = flags.GetString("out", "BENCH_net.json");
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    dir = (fs::temp_directory_path() / "bench_net_state").string();
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("== wire transport: loopback RPC + streaming WAL ship ==\n");
  std::printf("%d small calls, %d large calls, %zu MiB ship, "
              "%d hardware threads\n\n",
              small_calls, large_calls, ship_mb, hw);

  // --- RPC round-trips over a loopback echo server. ------------------
  net::RpcServerConfig scfg;
  scfg.endpoint.port = 0;
  auto server_or = net::RpcServer::Start(
      scfg, [](uint8_t, std::string_view body) -> Result<std::string> {
        return std::string(body);
      });
  TURBO_CHECK_MSG(server_or.ok(), server_or.status().ToString());
  auto server = server_or.take();
  net::RpcClientConfig ccfg;
  ccfg.endpoint = server->endpoint();
  net::RpcClient client(ccfg);

  const std::string small(64, 'a');
  TURBO_CHECK(client.Call(1, small).ok());  // connect outside the clock
  Stopwatch small_sw;
  for (int i = 0; i < small_calls; ++i) {
    auto r = client.Call(1, small);
    TURBO_CHECK(r.ok() && r.value().size() == small.size());
  }
  const double small_s = small_sw.ElapsedSeconds();
  const double small_rps = small_calls / std::max(small_s, 1e-9);

  const std::string large(256 * 1024, 'b');
  Stopwatch large_sw;
  for (int i = 0; i < large_calls; ++i) {
    auto r = client.Call(1, large);
    TURBO_CHECK(r.ok() && r.value().size() == large.size());
  }
  const double large_s = large_sw.ElapsedSeconds();
  // Payload crosses the loopback twice per echo (request + response).
  const double large_mbps = 2.0 * large_calls * large.size() /
                            (1024.0 * 1024.0) / std::max(large_s, 1e-9);

  // --- Streaming WAL ship into a WalSinkService. ---------------------
  fs::remove_all(dir);
  const std::string src = dir + "/primary";
  const std::string replica = dir + "/replica";
  fs::create_directories(src);
  const size_t wal_bytes = FillWalDir(src, ship_mb << 20);

  net::WalSinkServiceConfig wcfg;
  wcfg.endpoint.port = 0;
  wcfg.replica_dir = replica;
  auto sink_or = net::WalSinkService::Start(wcfg);
  TURBO_CHECK_MSG(sink_or.ok(), sink_or.status().ToString());
  auto sink = sink_or.take();
  net::RpcClientConfig scc;
  scc.endpoint = sink->endpoint();
  net::RpcClient ship_client(scc);

  Stopwatch ship_sw;
  auto stats_or = net::ShipWalOverRpc(src, &ship_client);
  const double ship_s = ship_sw.ElapsedSeconds();
  TURBO_CHECK_MSG(stats_or.ok(), stats_or.status().ToString());
  const double ship_mbps =
      wal_bytes / (1024.0 * 1024.0) / std::max(ship_s, 1e-9);
  // The number only counts if the replica is byte-identical.
  for (uint64_t seq : storage::ListWalSegments(src)) {
    TURBO_CHECK_MSG(ReadBytes(storage::WalSegmentPath(replica, seq)) ==
                        ReadBytes(storage::WalSegmentPath(src, seq)),
                    "replica diverged on segment " << seq);
  }

  // Steady state: the cursor protocol re-stats every file and moves
  // nothing. This is what a standby costs per ship period when idle.
  const int noop_rounds = 50;
  Stopwatch noop_sw;
  for (int i = 0; i < noop_rounds; ++i) {
    auto r = net::ShipWalOverRpc(src, &ship_client);
    TURBO_CHECK(r.ok() && r.value().segment_bytes_appended == 0);
  }
  const double noop_s = noop_sw.ElapsedSeconds();
  const double noop_rps = noop_rounds / std::max(noop_s, 1e-9);

  TablePrinter table({"cell", "value", "notes"});
  table.AddRow({"rpc 64B round-trips/s", StrFormat("%.0f", small_rps),
                StrFormat("%.1f us/call", 1e6 / small_rps)});
  table.AddRow({"rpc 256KiB echo MB/s", StrFormat("%.0f", large_mbps),
                StrFormat("%d calls", large_calls)});
  table.AddRow({"wal ship MB/s", StrFormat("%.0f", ship_mbps),
                StrFormat("%zu bytes, replica verified", wal_bytes)});
  table.AddRow({"re-ship no-op rounds/s", StrFormat("%.0f", noop_rps),
                "cursor stat-only"});
  table.Print();

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"net\",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"small_calls\": " << small_calls << ",\n"
    << "  \"large_calls\": " << large_calls << ",\n"
    << "  \"wal_bytes\": " << wal_bytes << ",\n"
    << "  \"rpc_small_roundtrips_per_s\": " << small_rps << ",\n"
    << "  \"rpc_large_mb_per_s\": " << large_mbps << ",\n"
    << "  \"wal_ship_mb_per_s\": " << ship_mbps << ",\n"
    << "  \"reship_noop_rounds_per_s\": " << noop_rps << "\n"
    << "}\n";
  std::printf("\nwrote %s\n", out.c_str());
  fs::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
