// Open-loop load study: what the serving stack does when arrivals
// outpace service (ROADMAP item 3, the saturation story behind the
// paper's §V real-time latency claim).
//
// Closed-loop benches cannot see overload — the client waits for each
// response, so offered load tracks capacity by construction. Here a
// pre-generated Poisson schedule replays datagen traffic against ingest
// (BnServer's bounded MPSC ring, drained by a writer thread) and
// prediction (deadline-aware coalescing queue) CONCURRENTLY, at rates
// swept around the measured closed-loop capacity. Latency is measured
// from each request's intended arrival time (coordinated-omission
// safe), and every request carries deadline = intended arrival +
// --slo_ms, so past-deadline work is shed before it spends compute.
//
// Acceptance (the ISSUE 7 bar, enforced by the exit code):
//  * below saturation (gated rates): p99 within the SLO, zero sheds,
//    zero admission rejections. Advisory (printed, not fatal) on a
//    1-hardware-thread box, where the generator, ingest drain, and
//    worker share one core and absolute tail latency measures scheduler
//    interference as much as the stack;
//  * above saturation: goodput (in-deadline completions/s) stays at
//    >= 80% of the peak across the sweep — shedding and backpressure
//    absorb the excess instead of collapsing into queueing death.
//    Ratio-based, so it holds on any core count and is always fatal.
//
// Writes BENCH_load.json (consumed by scripts/check_bench_regression.py;
// `hardware_threads` is recorded so the gate skips itself on a
// different core count, and multi-worker cells carry /tN/ labels so the
// single-core parallel-cell skip drops them on a 1-core runner).
// `p99_headroom` is SLO/p99 clamped to 2.0: deep-sub-SLO noise
// saturates at the clamp while a p99 creeping toward the SLO pulls the
// gated value down.
//
//   ./bench_open_loop [--users=N] [--epochs=E] [--duration_s=D]
//                     [--slo_ms=S] [--ingest_factor=F]
//                     [--out=BENCH_load.json]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "server/load_gen.h"
#include "server/prediction_server.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace turbo::benchx {
namespace {

struct ServingStack {
  std::unique_ptr<core::PreparedData> data;
  std::unique_ptr<core::Hag> model;
  std::unique_ptr<server::BnServer> bn;
  std::unique_ptr<features::FeatureStore> features;
  std::vector<UserId> pool;  // request targets, cycled by every run
};

ServingStack BuildStack(int users, const BenchScale& scale,
                        size_t ingest_ring) {
  ServingStack s;
  core::PipelineConfig pipeline;
  // One pinned snapshot at the end of the stream serves the whole
  // sweep; coarse windows keep the recent cohort's edges live there.
  pipeline.bn.windows = {kDay, 7 * kDay, 30 * kDay};
  s.data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(users)),
      pipeline);
  s.model = std::make_unique<core::Hag>(MakeHagConfig(scale, 42));
  core::TrainAndScoreGnn(s.model.get(), *s.data, bn::SamplerConfig{},
                         MakeTrainConfig(scale, 42));

  server::BnServerConfig bcfg;
  bcfg.bn = pipeline.bn;
  bcfg.num_users = users;
  bcfg.ingest_queue_capacity = ingest_ring;
  s.bn = std::make_unique<server::BnServer>(bcfg);
  s.bn->IngestBatch(s.data->dataset.logs);
  SimTime horizon = 0;
  for (const auto& u : s.data->dataset.users) {
    horizon = std::max(horizon, u.application_time);
  }
  s.bn->AdvanceTo(horizon + kHour);

  s.features = std::make_unique<features::FeatureStore>(
      features::FeatureStoreConfig{}, &s.bn->logs());
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    const float* row = s.data->dataset.profile_features.row(u);
    s.features->PutProfile(
        u, std::vector<float>(
               row, row + s.data->dataset.profile_features.cols()));
  }
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    s.features->GetFeatures(u, s.bn->now());
  }
  for (UserId u : s.data->test_uids) {
    if (s.data->dataset.users[u].application_time + 14 * kDay >= horizon) {
      s.pool.push_back(u);
    }
  }
  if (s.pool.size() < 8) s.pool = s.data->test_uids;
  TURBO_CHECK_GT(s.pool.size(), 0u);
  return s;
}

/// Closed-loop capacity: requests/s of one client thread running
/// batched tape-free inference flat out — the reference the open-loop
/// rate sweep is anchored to.
double MeasureCapacity(ServingStack* s, size_t requests) {
  obs::MetricsRegistry reg;
  server::PredictionConfig pcfg;
  pcfg.metrics = &reg;
  pcfg.use_inference_path = true;
  server::PredictionServer srv(pcfg, s->bn.get(), s->features.get(),
                               s->model.get(), &s->data->scaler);
  constexpr int kBatch = 8;
  Stopwatch sw;
  size_t done = 0;
  while (done < requests) {
    std::vector<UserId> uids(kBatch);
    for (int j = 0; j < kBatch; ++j) {
      uids[j] = s->pool[(done + j) % s->pool.size()];
    }
    srv.HandleBatch(uids);
    done += kBatch;
  }
  return static_cast<double>(done) / std::max(sw.ElapsedSeconds(), 1e-9);
}

struct LoadRun {
  double rate_x = 0.0;  // multiple of measured capacity
  int workers = 1;
  bool gate = false;  // sub-saturation cell the CI job gates on
  double rate_rps = 0.0;
  server::LoadGenResult res;
  double p99_headroom = 0.0;
};

LoadRun RunOne(ServingStack* s, double rate_x, int workers, bool gate,
               double capacity_rps, double duration_s, double slo_ms,
               double ingest_factor) {
  LoadRun run;
  run.rate_x = rate_x;
  run.workers = workers;
  run.gate = gate;
  run.rate_rps = rate_x * capacity_rps;

  obs::MetricsRegistry reg;
  server::PredictionConfig pcfg;
  pcfg.metrics = &reg;
  pcfg.use_inference_path = true;
  server::PredictionServer srv(pcfg, s->bn.get(), s->features.get(),
                               s->model.get(), &s->data->scaler);

  server::LoadGenConfig lcfg;
  lcfg.prediction_rate = run.rate_rps;
  lcfg.ingest_rate = ingest_factor * run.rate_rps;
  lcfg.duration_s = duration_s;
  lcfg.slo_ms = slo_ms;
  lcfg.seed = 7;
  lcfg.batching.max_batch_size = 8;
  lcfg.batching.workers = workers;
  lcfg.batching.max_wait_ms = 0.5;
  // Queue cap: half an SLO of work at the measured SERVICE rate, so
  // queueing delay alone can never eat the whole latency budget — a
  // deeper queue only manufactures guaranteed-late work under
  // sustained overload (this is what the first smoke run showed:
  // capping at 2 SLOs of *offered* load let every served request
  // finish just past its deadline).
  lcfg.batching.max_queue = static_cast<size_t>(std::clamp(
      capacity_rps * slo_ms / 2000.0, 16.0, 2048.0));

  server::OpenLoopLoadGen gen(lcfg, &srv, s->bn.get(), &reg);
  run.res = gen.Run(s->pool, s->data->dataset.logs);
  // Clamp at 2.0: any p99 comfortably inside half the SLO saturates
  // the gated value, so deep-sub-SLO jitter cannot flake the gate,
  // while a p99 past slo/2 pulls the value (and the gate) down.
  run.p99_headroom =
      std::min(slo_ms / std::max(run.res.p99_ms, 1e-9), 2.0);
  return run;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto scale = BenchScale::FromFlags(flags);
  scale.epochs = flags.GetInt("epochs", 4);
  const int users = flags.GetInt("users", 600);
  const double duration_s = flags.GetDouble("duration_s", 2.5);
  const double slo_ms = flags.GetDouble("slo_ms", 60.0);
  const double ingest_factor = flags.GetDouble("ingest_factor", 4.0);
  const size_t ingest_ring =
      static_cast<size_t>(flags.GetInt("ingest_ring", 1024));
  const std::string out = flags.GetString("out", "BENCH_load.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("== open-loop load: Poisson arrivals vs admission control ==\n");
  std::printf("users=%d, duration=%.1fs/run, slo=%.0fms, %d hardware "
              "threads\n\n",
              users, duration_s, slo_ms, hw);
  ServingStack stack = BuildStack(users, scale, ingest_ring);

  const double capacity_rps =
      MeasureCapacity(&stack, std::max<size_t>(160, stack.pool.size()));
  std::printf("closed-loop capacity (1 thread, batch 8): %.1f req/s\n\n",
              capacity_rps);

  std::vector<LoadRun> runs;
  // Sub-saturation cells: the SLO gate. Overload cell: the goodput
  // floor. The workers=2 cell exercises multi-worker draining; its /t2/
  // labels are skipped by the regression gate on a 1-core box.
  // Gated rates sit well below effective saturation: the closed-loop
  // capacity is measured at a full batch of 8 with no co-running
  // ingest/generator threads, so the open-loop stack saturates at
  // roughly half of it (partial batches + core sharing).
  runs.push_back(RunOne(&stack, 0.15, 1, true, capacity_rps, duration_s,
                        slo_ms, ingest_factor));
  runs.push_back(RunOne(&stack, 0.3, 1, true, capacity_rps, duration_s,
                        slo_ms, ingest_factor));
  runs.push_back(RunOne(&stack, 0.3, 2, true, capacity_rps, duration_s,
                        slo_ms, ingest_factor));
  runs.push_back(RunOne(&stack, 2.0, 1, false, capacity_rps, duration_s,
                        slo_ms, ingest_factor));

  double peak_goodput = 0.0;
  for (const auto& r : runs) {
    peak_goodput = std::max(peak_goodput, r.res.goodput_rps);
  }

  TablePrinter table({"rate", "workers", "offered", "goodput/s", "frac",
                      "p50/p99/p999 (ms)", "shed", "rejected",
                      "ingest off/rej"});
  bool slo_ok = true;
  for (const auto& r : runs) {
    table.AddRow(
        {StrFormat("%.2fx (%.0f/s)", r.rate_x, r.rate_rps),
         std::to_string(r.workers), std::to_string(r.res.offered),
         StrFormat("%.1f", r.res.goodput_rps),
         StrFormat("%.3f", r.res.goodput_frac),
         StrFormat("%.1f/%.1f/%.1f", r.res.p50_ms, r.res.p99_ms,
                   r.res.p999_ms),
         std::to_string(r.res.shed), std::to_string(r.res.rejected),
         StrFormat("%zu/%zu", r.res.ingest_offered,
                   r.res.ingest_rejected)});
    if (r.gate && r.workers == 1) {
      if (r.res.p99_ms > slo_ms || r.res.shed + r.res.rejected > 0) {
        slo_ok = false;
      }
    }
  }
  table.Print();

  const LoadRun& overload = runs.back();
  const double overload_ratio =
      overload.res.goodput_rps / std::max(peak_goodput, 1e-9);
  // One core cannot isolate the generator + drain threads from the
  // worker, so a scheduler stall lands in the tail; the absolute-SLO
  // check is advisory there. CI runners are multi-core, so the bar is
  // enforced where it is meaningful.
  const bool slo_fatal = hw >= 2;
  std::printf("\nsub-saturation SLO (p99 <= %.0fms, zero shed): %s%s\n",
              slo_ms, slo_ok ? "OK" : "VIOLATED",
              slo_fatal ? "" : " (advisory: 1 hardware thread)");
  std::printf("overload goodput: %.1f/s = %.0f%% of peak %.1f/s "
              "(floor 80%%): %s\n",
              overload.res.goodput_rps, 100.0 * overload_ratio,
              peak_goodput, overload_ratio >= 0.8 ? "OK" : "COLLAPSED");

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"open_loop\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"duration_s\": " << duration_s << ",\n"
    << "  \"slo_ms\": " << slo_ms << ",\n"
    << "  \"capacity_rps\": " << capacity_rps << ",\n"
    << "  \"overload_goodput_ratio\": " << overload_ratio << ",\n"
    << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    f << "    {\"rate_x\": " << r.rate_x
      << ", \"workers\": " << r.workers
      << ", \"gate\": " << (r.gate ? "true" : "false")
      << ", \"rate_rps\": " << r.rate_rps
      << ", \"offered\": " << r.res.offered
      << ", \"served\": " << r.res.served
      << ", \"shed\": " << r.res.shed
      << ", \"rejected\": " << r.res.rejected
      << ", \"in_deadline\": " << r.res.in_deadline
      << ", \"goodput_rps\": " << r.res.goodput_rps
      << ", \"goodput_frac\": " << r.res.goodput_frac
      << ", \"p50_ms\": " << r.res.p50_ms
      << ", \"p99_ms\": " << r.res.p99_ms
      << ", \"p999_ms\": " << r.res.p999_ms
      << ", \"max_ms\": " << r.res.max_ms
      << ", \"p99_headroom\": " << r.p99_headroom
      << ", \"ingest_offered\": " << r.res.ingest_offered
      << ", \"ingest_rejected\": " << r.res.ingest_rejected
      << ", \"ingest_applied\": " << r.res.ingest_applied
      << ", \"ingest_p99_ms\": " << r.res.ingest_p99_ms << "}"
      << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  f << "  ]\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return ((slo_ok || !slo_fatal) && overload_ratio >= 0.8) ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
