// BN design ablations (DESIGN.md §4, beyond the paper's own tables):
//   * hierarchical time windows vs a single 1-day window,
//   * inverse weight assignment on vs off,
//   * sampler fanout sweep.
// Each variant is scored by the 1-hop homophily contrast it produces and
// by HAG AUC trained on it.
#include <cstdio>

#include "analysis/empirical.h"
#include "bench/bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace turbo;

namespace {

struct VariantResult {
  size_t edges;
  double homophily_contrast;  // fraud-seed vs normal-seed 1-hop ratio
  double hag_auc;
};

VariantResult RunVariant(const datagen::ScenarioConfig& scenario,
                         const core::PipelineConfig& pipeline,
                         const bn::SamplerConfig& sampler,
                         const benchx::BenchScale& scale) {
  auto data = core::PrepareData(datagen::GenerateScenario(scenario),
                                pipeline);
  VariantResult out;
  out.edges = data->network.TotalEdges();
  auto ratio = analysis::HopFraudRatio(data->network, data->labels, 1);
  out.homophily_contrast =
      ratio.fraud_seed[0] / std::max(1e-4, ratio.normal_seed[0]);
  core::Hag model(benchx::MakeHagConfig(scale, 42));
  auto scores = core::TrainAndScoreGnn(&model, *data, sampler,
                                       benchx::MakeTrainConfig(scale, 42));
  out.hag_auc =
      metrics::RocAuc(scores, data->LabelsFor(data->test_uids)) * 100.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::Flags flags(argc, argv);
  auto scale = benchx::BenchScale::FromFlags(flags);
  scale.users = flags.GetInt("users", 2000);

  std::printf("== BN construction & sampling ablations (users=%d) ==\n\n",
              scale.users);
  auto scenario = datagen::ScenarioConfig::D1Like(scale.users);

  TablePrinter table({"variant", "BN edges", "1-hop homophily contrast",
                      "HAG AUC"});
  auto add = [&](const char* name, const core::PipelineConfig& p,
                 const bn::SamplerConfig& s) {
    auto r = RunVariant(scenario, p, s, scale);
    table.AddRow({name, std::to_string(r.edges),
                  StrFormat("%.1fx", r.homophily_contrast),
                  StrFormat("%.2f", r.hag_auc)});
    std::printf("%-28s done (AUC %.2f)\n", name, r.hag_auc);
  };

  core::PipelineConfig base;
  bn::SamplerConfig sampler;
  add("full (13 windows, inverse)", base, sampler);

  core::PipelineConfig single = base;
  single.bn.windows = {kDay};
  add("single 1-day window", single, sampler);

  core::PipelineConfig coarse = base;
  coarse.bn.windows = {kHour, kDay};
  add("two windows (1h, 1d)", coarse, sampler);

  core::PipelineConfig no_inverse = base;
  no_inverse.bn.inverse_weighting = false;
  add("no inverse weighting", no_inverse, sampler);

  for (int fanout : {5, 25}) {
    bn::SamplerConfig s = sampler;
    s.fanout = fanout;
    add(StrFormat("fanout=%d (top-by-weight)", fanout).c_str(), base, s);
  }
  bn::SamplerConfig uniform = sampler;
  uniform.top_by_weight = false;
  add("fanout=25 (uniform)", base, uniform);

  std::printf("\n");
  table.Print();
  std::printf("\nshape check: the hierarchical-window, inverse-weighted "
              "construction maximizes homophily contrast; HAG accuracy "
              "degrades gracefully as the construction is coarsened.\n");
  return 0;
}
