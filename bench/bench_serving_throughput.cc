// Serving-throughput study for the batched tape-free inference path:
// requests/s and per-call p99 as a function of client-thread count and
// batch size, with an autograd-forward ablation and a cache-enabled run.
//
// Every run gets a fresh PredictionServer with a private registry (so
// p99 comes from that run's predict_total_ms histogram) but shares one
// trained HAG, one BnServer snapshot, and one warm FeatureStore — the
// production shape: a pinned snapshot serving many concurrent clients.
//
// Writes BENCH_serving.json (consumed by scripts/check_bench_regression.py;
// `hardware_threads` is recorded so the gate can skip itself on a
// different core count). The headline acceptance number: the tape-free
// batched path at batch >= 8 must clear 3x the single-request
// autograd-forward throughput.
//
//   ./bench_serving_throughput [--users=N] [--requests=K] [--epochs=E]
//                              [--out=BENCH_serving.json]
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "la/cpu_features.h"
#include "obs/metrics.h"
#include "server/prediction_server.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace turbo::benchx {
namespace {

struct ServingStack {
  std::unique_ptr<core::PreparedData> data;
  std::unique_ptr<core::Hag> model;
  std::unique_ptr<server::BnServer> bn;
  std::unique_ptr<features::FeatureStore> features;
  std::vector<UserId> pool;  // request targets, cycled by every run
};

ServingStack BuildStack(int users, const BenchScale& scale) {
  ServingStack s;
  core::PipelineConfig pipeline;
  // Coarser windows than the fig8 latency bench: throughput is measured
  // against ONE pinned snapshot at the end of the stream, so the recent
  // cohort must still have live (un-decayed) edges at that point.
  pipeline.bn.windows = {kDay, 7 * kDay, 30 * kDay};
  s.data = core::PrepareData(
      datagen::GenerateScenario(datagen::ScenarioConfig::D1Like(users)),
      pipeline);
  s.model = std::make_unique<core::Hag>(MakeHagConfig(scale, 42));
  core::TrainAndScoreGnn(s.model.get(), *s.data, bn::SamplerConfig{},
                         MakeTrainConfig(scale, 42));

  server::BnServerConfig bcfg;
  bcfg.bn = pipeline.bn;
  bcfg.num_users = users;
  s.bn = std::make_unique<server::BnServer>(bcfg);
  s.bn->IngestBatch(s.data->dataset.logs);
  // Pin one snapshot covering the whole stream: throughput is measured
  // against a stable published version, as in steady-state serving.
  SimTime horizon = 0;
  for (const auto& u : s.data->dataset.users) {
    horizon = std::max(horizon, u.application_time);
  }
  s.bn->AdvanceTo(horizon + kHour);

  s.features = std::make_unique<features::FeatureStore>(
      features::FeatureStoreConfig{}, &s.bn->logs());
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    const float* row = s.data->dataset.profile_features.row(u);
    s.features->PutProfile(
        u, std::vector<float>(
               row, row + s.data->dataset.profile_features.cols()));
  }
  // Warm the statistical-feature cache at the pinned as_of so every run
  // (autograd and inference alike) measures serving, not first-touch
  // feature computation.
  for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
    s.features->GetFeatures(u, s.bn->now());
  }
  // Audit requests target the recently-active cohort (the production
  // shape: applications are scored at application time, so the target's
  // behavior edges are live in the current snapshot).
  for (UserId u : s.data->test_uids) {
    if (s.data->dataset.users[u].application_time + 14 * kDay >= horizon) {
      s.pool.push_back(u);
    }
  }
  if (s.pool.size() < 8) s.pool = s.data->test_uids;
  TURBO_CHECK_GT(s.pool.size(), 0u);
  return s;
}

struct RunResult {
  // "autograd" | "inference" | "inference[scalar]" | "inference[int8]"
  // | "inference+cache"
  std::string mode;
  int threads = 0;
  int batch = 0;
  size_t requests = 0;
  double seconds = 0.0;
  double requests_per_second = 0.0;
  double mean_call_ms = 0.0;  // per HandleBatch call, modeled cost incl.
  double p99_call_ms = 0.0;
  double sample_ms = 0.0;  // per-call stage means, same caveat
  double feature_ms = 0.0;
  double inference_ms = 0.0;
  double subgraph_nodes = 0.0;  // mean merged-subgraph size
  uint64_t cache_hits = 0;
  double speedup = 1.0;  // vs the single-request autograd baseline
};

/// One measurement: `threads` client threads drain a shared work queue
/// of HandleBatch calls against a fresh server. `pool` is cycled so
/// every run touches the same targets.
RunResult RunOne(ServingStack* s, const std::string& mode, int threads,
                 int batch, size_t total_requests, size_t cache_capacity,
                 const std::vector<UserId>& pool) {
  obs::MetricsRegistry reg;
  server::PredictionConfig pcfg;
  pcfg.metrics = &reg;
  pcfg.use_inference_path = mode != "autograd";
  pcfg.cache_capacity = cache_capacity;
  // "inference[scalar]" ablates the SIMD tiers (dispatch forced to the
  // scalar kernels); "inference[int8]" serves from row-quantized
  // weights via the server config flag.
  pcfg.quantized_inference = mode == "inference[int8]";
  std::unique_ptr<la::ScopedKernelIsa> forced_scalar;
  if (mode == "inference[scalar]") {
    forced_scalar =
        std::make_unique<la::ScopedKernelIsa>(la::KernelIsa::kScalar);
  }
  server::PredictionServer srv(pcfg, s->bn.get(), s->features.get(),
                               s->model.get(), &s->data->scaler);

  const size_t total_batches =
      (total_requests + static_cast<size_t>(batch) - 1) / batch;
  std::atomic<size_t> next{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const size_t bi = next.fetch_add(1);
        if (bi >= total_batches) return;
        std::vector<UserId> uids(batch);
        for (int j = 0; j < batch; ++j) {
          uids[j] = pool[(bi * batch + j) % pool.size()];
        }
        const auto resps = srv.HandleBatch(uids);
        TURBO_CHECK_EQ(resps.size(), uids.size());
      }
    });
  }
  for (auto& w : workers) w.join();
  if (pcfg.quantized_inference) {
    // The server ctor switched the shared model to int8; restore the
    // float path for the runs that follow.
    s->model->SetInferenceMode(gnn::InferenceMode::kFloat);
  }

  RunResult r;
  r.mode = mode;
  r.threads = threads;
  r.batch = batch;
  r.seconds = sw.ElapsedSeconds();
  r.requests = total_batches * static_cast<size_t>(batch);
  r.requests_per_second = r.requests / std::max(r.seconds, 1e-9);
  const obs::Histogram& total = *reg.GetHistogram("predict_total_ms");
  r.mean_call_ms = total.Mean();
  r.p99_call_ms = total.Percentile(0.99);
  r.sample_ms = reg.GetHistogram("predict_sample_ms")->Mean();
  r.feature_ms = reg.GetHistogram("predict_feature_ms")->Mean();
  r.inference_ms = reg.GetHistogram("predict_inference_ms")->Mean();
  r.subgraph_nodes = reg.GetHistogram("predict_subgraph_nodes")->Mean();
  r.cache_hits = reg.GetCounter("predict_cache_hits_total")->value();
  return r;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  auto scale = BenchScale::FromFlags(flags);
  // Throughput does not need a converged model; keep training short
  // unless --epochs says otherwise.
  scale.epochs = flags.GetInt("epochs", 10);
  const int users = flags.GetInt("users", 1200);
  const size_t requests =
      static_cast<size_t>(flags.GetInt("requests", 192));
  const std::string out = flags.GetString("out", "BENCH_serving.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("== serving throughput: batched tape-free inference ==\n");
  std::printf("users=%d, %zu requests per run, %d hardware threads\n\n",
              users, requests, hw);
  ServingStack stack = BuildStack(users, scale);

  std::vector<RunResult> runs;
  // Baseline: one client, one request per call, autograd forward — the
  // pre-optimization serving path.
  runs.push_back(
      RunOne(&stack, "autograd", 1, 1, requests, 0, stack.pool));
  const double baseline_rps = runs.front().requests_per_second;
  // Ablation: batching alone (autograd forward on merged batches)
  // separates the merged-subgraph win from the tape-free win.
  runs.push_back(
      RunOne(&stack, "autograd", 1, 8, requests, 0, stack.pool));
  // Grid: tape-free path over thread count x batch size.
  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 8, 16, 32}) {
      runs.push_back(RunOne(&stack, "inference", threads, batch, requests,
                            0, stack.pool));
    }
  }
  // SIMD ablation and int8 quantized serving at the t1/b8 cell (the
  // smallest gated batched cell): the scalar run isolates what the
  // dispatched kernels buy end-to-end, the int8 run measures the
  // quantized weight path the AUC gate admits.
  runs.push_back(RunOne(&stack, "inference[scalar]", 1, 8, requests, 0,
                        stack.pool));
  runs.push_back(RunOne(&stack, "inference[int8]", 1, 8, requests, 0,
                        stack.pool));
  // Snapshot-versioned cache: a small hot set cycled repeatedly, so the
  // second and later passes are served from the cache.
  std::vector<UserId> hot(stack.pool.begin(),
                          stack.pool.begin() +
                              std::min<size_t>(stack.pool.size(), 64));
  runs.push_back(
      RunOne(&stack, "inference+cache", 4, 8, requests, 1024, hot));

  double acceptance = 0.0;  // best inference speedup at batch>=8
  TablePrinter table({"mode", "threads", "batch", "req/s", "speedup",
                      "p99 call (ms)", "sample/feat/infer (ms)", "nodes",
                      "cache hits"});
  for (auto& r : runs) {
    r.speedup = r.requests_per_second / std::max(baseline_rps, 1e-9);
    if (r.mode == "inference" && r.batch >= 8) {
      acceptance = std::max(acceptance, r.speedup);
    }
    table.AddRow({r.mode, std::to_string(r.threads),
                  std::to_string(r.batch),
                  StrFormat("%.1f", r.requests_per_second),
                  StrFormat("%.2fx", r.speedup),
                  StrFormat("%.2f", r.p99_call_ms),
                  StrFormat("%.2f/%.2f/%.2f", r.sample_ms, r.feature_ms,
                            r.inference_ms),
                  StrFormat("%.0f", r.subgraph_nodes),
                  std::to_string(r.cache_hits)});
  }
  table.Print();
  std::printf("\nbest tape-free batched speedup (batch >= 8): %.2fx "
              "(target >= 3x over single-request autograd)\n",
              acceptance);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"serving_throughput\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"requests_per_run\": " << requests << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"kernel_isa\": \"" << la::IsaName(la::ActiveIsa()) << "\",\n"
    << "  \"baseline_requests_per_second\": " << baseline_rps << ",\n"
    << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    f << "    {\"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
      << ", \"batch\": " << r.batch << ", \"requests\": " << r.requests
      << ", \"seconds\": " << r.seconds
      << ", \"requests_per_second\": " << r.requests_per_second
      << ", \"mean_call_ms\": " << r.mean_call_ms
      << ", \"p99_call_ms\": " << r.p99_call_ms
      << ", \"sample_ms\": " << r.sample_ms
      << ", \"feature_ms\": " << r.feature_ms
      << ", \"inference_ms\": " << r.inference_ms
      << ", \"subgraph_nodes\": " << r.subgraph_nodes
      << ", \"cache_hits\": " << r.cache_hits
      << ", \"speedup_vs_baseline\": " << r.speedup << "}"
      << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  f << "  ],\n"
    << "  \"batched_inference_speedup\": " << acceptance << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  return acceptance >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
