// Cluster study (DESIGN.md §14): what does sharding the BN server buy,
// and what does failover cost once a warm standby is replaying?
//
//   ingest scale-out   the same hourly traffic driven through a
//                      BnCluster at 1/2/4 shards (advance_threads =
//                      shards). Dual delivery means an N-shard cluster
//                      does strictly more raw work than one server —
//                      the win is that the work is parallel.
//   failover           primary with a WAL, standby continuously
//                      catching up over storage::ShipWalDir. At the
//                      "crash": final ship, then
//                        cold   fresh server replays the whole WAL dir
//                        warm   standby applies the last tail + Promote
//                      Both are CHECKed bit-identical to the primary
//                      before any number is reported.
//
// catchup_speedup (cold / warm) is a machine-independent ratio — the
// regression gate compares it on any box, while the per-shard ingest
// cells carry /tN/ labels so single-core runners skip them.
//
// Writes BENCH_cluster.json (consumed by
// scripts/check_bench_regression.py).
//
//   ./bench_cluster [--users=N] [--logs=K] [--days=D]
//                   [--ship_every_hours=H] [--dir=STATE_DIR]
//                   [--out=BENCH_cluster.json]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "server/bn_cluster.h"
#include "server/warm_standby.h"
#include "storage/wal.h"
#include "storage/wal_ship.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace turbo::benchx {
namespace {

/// Community-structured co-occurrence traffic (the bench_recovery
/// shape), sorted by time so the driver can interleave hourly advances.
BehaviorLogList MakeLogs(uint64_t seed, int users, size_t n,
                         SimTime span) {
  const BehaviorType types[] = {BehaviorType::kIpv4, BehaviorType::kImei,
                                BehaviorType::kWifiMac};
  constexpr int kCommunity = 4;
  constexpr ValueId kNoiseValues = 65536;
  Rng rng(seed);
  BehaviorLogList logs;
  logs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BehaviorLog log;
    log.uid = static_cast<UserId>(rng.NextUint(users));
    log.type = types[rng.NextUint(3)];
    log.value = rng.NextBool(0.999)
                    ? kNoiseValues + log.uid / kCommunity
                    : rng.NextZipf(kNoiseValues, 0.5);
    log.time =
        static_cast<SimTime>(rng.NextUint(static_cast<uint64_t>(span)));
    logs.push_back(log);
  }
  std::sort(logs.begin(), logs.end(),
            [](const BehaviorLog& a, const BehaviorLog& b) {
              return a.time < b.time;
            });
  return logs;
}

server::BnServerConfig ShardConfig(int users) {
  server::BnServerConfig cfg;
  cfg.num_users = users;
  cfg.snapshot_refresh = kHour;
  return cfg;
}

void CheckIdentical(const server::BnServer& a, const server::BnServer& b,
                    int users) {
  TURBO_CHECK_EQ(a.now(), b.now());
  TURBO_CHECK_EQ(a.jobs_run(), b.jobs_run());
  TURBO_CHECK_EQ(a.logs().size(), b.logs().size());
  TURBO_CHECK_EQ(a.snapshot_version(), b.snapshot_version());
  for (int t = 0; t < kNumEdgeTypes; ++t) {
    TURBO_CHECK_EQ(a.edges().NumEdges(t), b.edges().NumEdges(t));
    for (UserId u = 0; u < static_cast<UserId>(users); ++u) {
      const auto& an = a.edges().Neighbors(t, u);
      const auto& bn = b.edges().Neighbors(t, u);
      TURBO_CHECK_EQ(an.size(), bn.size());
      for (const auto& [v, e] : an) {
        auto it = bn.find(v);
        TURBO_CHECK(it != bn.end());
        TURBO_CHECK_MSG(e.weight == it->second.weight,
                        "replicated state diverged on edge "
                            << u << "-" << v << " type " << t);
      }
    }
  }
}

/// Hour-by-hour cluster driver: ingest each hour's logs, then cross the
/// epoch barrier — the live-cluster loop.
double DriveCluster(server::BnCluster* cluster,
                    const BehaviorLogList& logs, SimTime span) {
  Stopwatch sw;
  size_t i = 0;
  for (SimTime h = kHour; h <= span; h += kHour) {
    while (i < logs.size() && logs[i].time < h) {
      cluster->Ingest(logs[i]);
      ++i;
    }
    cluster->AdvanceTo(h);
  }
  return sw.ElapsedSeconds();
}

struct IngestCell {
  int shards = 1;
  double events_per_second = 0.0;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int users = flags.GetInt("users", 8000);
  const size_t num_logs =
      static_cast<size_t>(flags.GetInt("logs", 800000));
  const int days = flags.GetInt("days", 2);
  const int ship_every = flags.GetInt("ship_every_hours", 4);
  const std::string out = flags.GetString("out", "BENCH_cluster.json");
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "bench_cluster_wal")
              .string();
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const SimTime span = days * kDay;
  std::printf("== BN cluster: ingest scale-out + warm-standby failover ==\n");
  std::printf("users=%d, logs=%zu over %dd, %d hardware threads\n\n", users,
              num_logs, days, hw);

  const BehaviorLogList logs = MakeLogs(0xc105ULL, users, num_logs, span);

  // --- Ingest scale-out: the same stream at 1, 2, and 4 shards. ------
  std::vector<IngestCell> cells;
  TablePrinter ingest_table({"shards", "seconds", "events/s", "notes"});
  for (int shards : {1, 2, 4}) {
    server::BnClusterConfig ccfg;
    ccfg.shard = ShardConfig(users);
    ccfg.num_shards = shards;
    ccfg.advance_threads = shards;
    server::BnCluster cluster(ccfg);
    const double secs = DriveCluster(&cluster, logs, span);
    const double eps = num_logs / std::max(secs, 1e-9);
    cells.push_back({shards, eps});
    uint64_t total_edges = 0;
    for (int s = 0; s < shards; ++s) {
      total_edges += cluster.shard(s).edges().TotalEdges();
    }
    ingest_table.AddRow(
        {StrFormat("%d", shards), StrFormat("%.3f", secs),
         StrFormat("%.0f", eps),
         StrFormat("%llu edge entries",
                   static_cast<unsigned long long>(total_edges))});
  }
  ingest_table.Print();

  // --- Failover: warm standby vs cold WAL rebuild. -------------------
  // No checkpoint on purpose: the cold path must replay the entire WAL,
  // which is exactly the history the standby has already absorbed.
  std::filesystem::remove_all(dir);
  const std::string primary_dir = dir + "/primary";
  const std::string replica_dir = dir + "/replica";
  std::filesystem::create_directories(primary_dir);
  std::filesystem::create_directories(replica_dir);

  server::BnServerConfig pcfg = ShardConfig(users);
  pcfg.wal_dir = primary_dir;
  server::BnServer primary(pcfg);

  server::WarmStandbyConfig scfg;
  scfg.server = ShardConfig(users);
  scfg.replica_dir = replica_dir;
  server::WarmStandby standby(scfg);

  // Live loop with continuous replication: every `ship_every` hours the
  // shipper mirrors the primary's WAL and the standby replays it.
  {
    size_t i = 0;
    for (SimTime h = kHour; h <= span; h += kHour) {
      while (i < logs.size() && logs[i].time < h) {
        primary.Ingest(logs[i]);
        ++i;
      }
      primary.AdvanceTo(h);
      if ((h / kHour) % ship_every == 0) {
        TURBO_CHECK(
            storage::ShipWalDir(primary_dir, replica_dir).ok());
        const Status s = standby.CatchUp();
        TURBO_CHECK_MSG(s.ok(), "catch-up failed: " << s.ToString());
      }
    }
  }
  TURBO_CHECK(standby.bootstrapped());

  // "Crash": the primary stops here. Final ship carries the last tail.
  TURBO_CHECK(storage::ShipWalDir(primary_dir, replica_dir).ok());

  // Cold path: a fresh server replays the whole durable history.
  server::BnServerConfig cold_cfg = ShardConfig(users);
  cold_cfg.wal_dir = primary_dir;
  auto cold = std::make_unique<server::BnServer>(cold_cfg);
  Stopwatch cold_sw;
  const Status cold_status = cold->Recover(primary_dir);
  const double cold_s = cold_sw.ElapsedSeconds();
  TURBO_CHECK_MSG(cold_status.ok(),
                  "cold rebuild failed: " << cold_status.ToString());
  CheckIdentical(primary, *cold, users);
  cold.reset();  // release the WAL dir before reporting

  // Warm path: the standby applies only the final tail, then promotes.
  Stopwatch warm_sw;
  const Status tail = standby.CatchUp();
  TURBO_CHECK_MSG(tail.ok(), "final catch-up failed: " << tail.ToString());
  auto promoted_or = standby.Promote();
  const double warm_s = warm_sw.ElapsedSeconds();
  TURBO_CHECK_MSG(promoted_or.ok(),
                  "promote failed: " << promoted_or.status().ToString());
  CheckIdentical(primary, *promoted_or.value(), users);

  const double speedup = cold_s / std::max(warm_s, 1e-9);
  TablePrinter failover_table({"path", "seconds", "notes"});
  failover_table.AddRow(
      {"cold WAL rebuild", StrFormat("%.3f", cold_s),
       StrFormat("full replay of %llu records",
                 static_cast<unsigned long long>(
                     standby.records_applied_total()))});
  failover_table.AddRow({"warm catch-up + promote",
                         StrFormat("%.4f", warm_s),
                         StrFormat("tail shipped every %dh", ship_every)});
  failover_table.Print();
  std::printf("\npromoted standby bit-identical to the primary\n");
  std::printf("failover speedup vs cold rebuild: %.1fx\n", speedup);

  std::ofstream f(out);
  f << "{\n"
    << "  \"bench\": \"cluster\",\n"
    << "  \"users\": " << users << ",\n"
    << "  \"logs\": " << num_logs << ",\n"
    << "  \"days\": " << days << ",\n"
    << "  \"ship_every_hours\": " << ship_every << ",\n"
    << "  \"hardware_threads\": " << hw << ",\n"
    << "  \"runs\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    f << "    {\"shards\": " << cells[i].shards
      << ", \"threads\": " << cells[i].shards
      << ", \"events_per_second\": " << cells[i].events_per_second << "}"
      << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  f << "  ],\n"
    << "  \"cold_rebuild_s\": " << cold_s << ",\n"
    << "  \"warm_failover_s\": " << warm_s << ",\n"
    << "  \"catchup_speedup\": " << speedup << "\n"
    << "}\n";
  std::printf("wrote %s\n", out.c_str());
  std::filesystem::remove_all(dir);
  return speedup > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace turbo::benchx

int main(int argc, char** argv) { return turbo::benchx::Main(argc, argv); }
